//! Per-particle precalculated field arrays — the paper's first benchmark
//! scenario (§5.2: "all field values are precalculated and stored in the
//! corresponding array").
//!
//! The arrays are stored SoA (one column per component), so the memory
//! traffic of the Precalculated scenario matches the paper's description:
//! an extra data array "comparable in size to the ensemble of particles"
//! that must be streamed from RAM on every step.

use crate::sampler::{FieldSampler, EB};
use pic_math::{Real, Vec3};

/// Precomputed (**E**, **B**) values, one entry per particle.
///
/// # Example
///
/// ```
/// use pic_fields::{PrecalculatedFields, UniformFields};
/// use pic_math::Vec3;
///
/// let src = UniformFields::<f64>::magnetic(Vec3::new(0.0, 0.0, 1.0));
/// let positions = vec![Vec3::zero(), Vec3::splat(1.0)];
/// let pre = PrecalculatedFields::from_sampler(&src, positions.iter().copied(), 0.0);
/// assert_eq!(pre.len(), 2);
/// assert_eq!(pre.get(1).b.z, 1.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PrecalculatedFields<R> {
    ex: Vec<R>,
    ey: Vec<R>,
    ez: Vec<R>,
    bx: Vec<R>,
    by: Vec<R>,
    bz: Vec<R>,
}

impl<R: Real> PrecalculatedFields<R> {
    /// Creates an empty array.
    pub fn new() -> PrecalculatedFields<R> {
        PrecalculatedFields::default()
    }

    /// Creates an array of `n` zero field values.
    pub fn zeros(n: usize) -> PrecalculatedFields<R> {
        PrecalculatedFields {
            ex: vec![R::ZERO; n],
            ey: vec![R::ZERO; n],
            ez: vec![R::ZERO; n],
            bx: vec![R::ZERO; n],
            by: vec![R::ZERO; n],
            bz: vec![R::ZERO; n],
        }
    }

    /// Reassembles an array from six externally owned component columns
    /// (the device backend stages the columns through USM buffers and
    /// rebuilds the array on the host side). All columns must have equal
    /// length; the values are taken verbatim, so a round trip through
    /// [`exs`](Self::exs)…[`bzs`](Self::bzs) is bitwise-identical.
    pub fn from_columns(
        ex: Vec<R>,
        ey: Vec<R>,
        ez: Vec<R>,
        bx: Vec<R>,
        by: Vec<R>,
        bz: Vec<R>,
    ) -> PrecalculatedFields<R> {
        let n = ex.len();
        assert!(
            ey.len() == n && ez.len() == n && bx.len() == n && by.len() == n && bz.len() == n,
            "from_columns: all six component columns must have equal length"
        );
        PrecalculatedFields {
            ex,
            ey,
            ez,
            bx,
            by,
            bz,
        }
    }

    /// Precomputes field values from `sampler` at the given particle
    /// positions and time — the setup phase of the paper's scenario 1.
    pub fn from_sampler<S, I>(sampler: &S, positions: I, time: R) -> PrecalculatedFields<R>
    where
        S: FieldSampler<R>,
        I: IntoIterator<Item = Vec3<R>>,
    {
        let mut out = PrecalculatedFields::new();
        for pos in positions {
            out.push(sampler.sample(pos, time));
        }
        out
    }

    /// Appends one field value.
    pub fn push(&mut self, f: EB<R>) {
        self.ex.push(f.e.x);
        self.ey.push(f.e.y);
        self.ez.push(f.e.z);
        self.bx.push(f.b.x);
        self.by.push(f.b.y);
        self.bz.push(f.b.z);
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.ex.len()
    }

    /// `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.ex.is_empty()
    }

    /// Field value for particle `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> EB<R> {
        // bounds: all six component columns share `len()`; `i >= len()` is
        // this accessor's documented panic.
        EB {
            e: Vec3::new(self.ex[i], self.ey[i], self.ez[i]),
            b: Vec3::new(self.bx[i], self.by[i], self.bz[i]),
        }
    }

    /// Overwrites the field value for particle `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, f: EB<R>) {
        self.ex[i] = f.e.x;
        self.ey[i] = f.e.y;
        self.ez[i] = f.e.z;
        self.bx[i] = f.b.x;
        self.by[i] = f.b.y;
        self.bz[i] = f.b.z;
    }

    /// Bytes of memory the arrays occupy — the extra RAM traffic that makes
    /// the Precalculated scenario memory-bound (paper §5.3, conclusion 5).
    pub fn memory_bytes(&self) -> usize {
        6 * self.len() * R::BYTES
    }

    /// Electric field x column (one entry per particle).
    pub fn exs(&self) -> &[R] {
        &self.ex
    }

    /// Electric field y column.
    pub fn eys(&self) -> &[R] {
        &self.ey
    }

    /// Electric field z column.
    pub fn ezs(&self) -> &[R] {
        &self.ez
    }

    /// Magnetic field x column.
    pub fn bxs(&self) -> &[R] {
        &self.bx
    }

    /// Magnetic field y column.
    pub fn bys(&self) -> &[R] {
        &self.by
    }

    /// Magnetic field z column.
    pub fn bzs(&self) -> &[R] {
        &self.bz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dipole::DipoleStandingWave;
    use pic_math::constants::{BENCH_OMEGA, BENCH_POWER, BENCH_WAVELENGTH};

    #[test]
    fn push_get_set_roundtrip() {
        let mut pre = PrecalculatedFields::<f32>::new();
        let f = EB::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        pre.push(EB::zero());
        pre.push(f);
        assert_eq!(pre.len(), 2);
        assert_eq!(pre.get(1), f);
        pre.set(0, f);
        assert_eq!(pre.get(0), f);
        assert!(!pre.is_empty());
    }

    #[test]
    fn zeros_are_zero() {
        let pre = PrecalculatedFields::<f64>::zeros(10);
        assert_eq!(pre.len(), 10);
        assert_eq!(pre.get(7), EB::zero());
    }

    #[test]
    fn from_sampler_matches_direct_evaluation() {
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let t = 0.2 / BENCH_OMEGA;
        let positions: Vec<Vec3<f64>> = (0..20)
            .map(|i| Vec3::splat(0.01 * BENCH_WAVELENGTH * i as f64))
            .collect();
        let pre = PrecalculatedFields::from_sampler(&wave, positions.iter().copied(), t);
        for (i, &pos) in positions.iter().enumerate() {
            assert_eq!(pre.get(i), wave.sample(pos, t), "particle {i}");
        }
    }

    #[test]
    fn from_columns_round_trips_bitwise() {
        let wave = DipoleStandingWave::<f32>::new(BENCH_POWER, BENCH_OMEGA);
        let positions: Vec<Vec3<f32>> = (0..17)
            .map(|i| Vec3::splat(0.02 * BENCH_WAVELENGTH as f32 * i as f32))
            .collect();
        let pre = PrecalculatedFields::from_sampler(&wave, positions.iter().copied(), 0.1);
        let rebuilt = PrecalculatedFields::from_columns(
            pre.exs().to_vec(),
            pre.eys().to_vec(),
            pre.ezs().to_vec(),
            pre.bxs().to_vec(),
            pre.bys().to_vec(),
            pre.bzs().to_vec(),
        );
        assert_eq!(rebuilt, pre);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_columns_rejects_ragged_columns() {
        let _ = PrecalculatedFields::<f64>::from_columns(
            vec![0.0; 3],
            vec![0.0; 2],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        );
    }

    #[test]
    fn memory_footprint_matches_paper_accounting() {
        // 6 components per particle: 24 B in float, 48 B in double —
        // "comparable in size to the ensemble of particles" (34/66 B).
        let f32_pre = PrecalculatedFields::<f32>::zeros(100);
        let f64_pre = PrecalculatedFields::<f64>::zeros(100);
        assert_eq!(f32_pre.memory_bytes(), 2400);
        assert_eq!(f64_pre.memory_bytes(), 4800);
    }
}

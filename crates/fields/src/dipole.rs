//! The standing magnetic-dipole (m-dipole) wave — the paper's benchmark
//! field (Eq. 14–15, §5.2).
//!
//! # Relation to the published formulas
//!
//! The wave is the exact source-free standing solution with magnetic-dipole
//! symmetry (Gonoskov et al., "Dipole pulse theory", PRA 86, 053836):
//!
//! ```text
//! E  =  2A₀ · cos(ω₀t) · f₁(kR)/R · (−y, x, 0)
//! Bx = −2A₀ · sin(ω₀t) · f₂(kR) · xz/R²
//! By = −2A₀ · sin(ω₀t) · f₂(kR) · yz/R²
//! Bz = −2A₀ · sin(ω₀t) · (f₂(kR)·z²/R² + f₃(kR))
//! ```
//!
//! with `A₀ = k·√(3P/c)` and the radial functions of
//! [`pic_math::special`]. Two formulas printed in the paper differ from
//! this: the PDF shows `By ∝ xy/R²` and an extra `z²/R²` factor in `Bz`.
//! Both are extraction/typesetting artifacts: with them **B** is neither
//! divergence-free nor axisymmetric and does not satisfy Faraday's law for
//! the printed **E**. The forms above are the unique completion that is an
//! exact vacuum Maxwell solution (the unit tests verify ∇·B = 0,
//! ∇×E = −(1/c)∂B/∂t and ∇×B = (1/c)∂E/∂t numerically).
//!
//! Near the focus the implementation evaluates `f₁(kR)/R` and `f₂(kR)/R²`
//! through their series forms (`f1_over_x`, `f2_over_x2`), so the field is
//! finite and smooth at `R = 0` where the closed forms are 0/0.

use crate::sampler::{BatchSampler, EbSlices, FieldSampler, EB};
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::special::{f1_over_x, f2_over_x2, f3};
use pic_math::tabulated::RadialTable;
use pic_math::{Real, Vec3};

/// The standing m-dipole wave of paper Eq. (14), dipole axis along z.
///
/// # Example
///
/// ```
/// use pic_fields::{DipoleStandingWave, FieldSampler};
/// use pic_math::constants::{BENCH_OMEGA, BENCH_POWER};
/// use pic_math::Vec3;
///
/// let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
/// // At the focus the electric field vanishes and B is purely axial.
/// let f = wave.sample(Vec3::zero(), 1.0e-15);
/// assert_eq!(f.e, Vec3::zero());
/// assert_eq!(f.b.x, 0.0);
/// assert!(f.b.z.abs() > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DipoleStandingWave<R> {
    /// Field amplitude A₀ = k√(3P/c), statvolt/cm.
    amplitude: R,
    /// Angular frequency ω₀, s⁻¹.
    omega: R,
    /// Wave number k = ω₀/c, cm⁻¹.
    k: R,
}

impl<R: Real> DipoleStandingWave<R> {
    /// Creates the wave from total power `power` (erg/s) and angular
    /// frequency `omega` (s⁻¹), per the paper: `A₀ = k√(3P/c)`.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or `omega` is not positive.
    pub fn new(power: f64, omega: f64) -> DipoleStandingWave<R> {
        assert!(power >= 0.0, "DipoleStandingWave: negative power");
        assert!(omega > 0.0, "DipoleStandingWave: non-positive omega");
        let k = omega / LIGHT_VELOCITY;
        let a0 = k * (3.0 * power / LIGHT_VELOCITY).sqrt();
        DipoleStandingWave {
            amplitude: R::from_f64(a0),
            omega: R::from_f64(omega),
            k: R::from_f64(k),
        }
    }

    /// Field amplitude A₀, statvolt/cm.
    pub fn amplitude(&self) -> R {
        self.amplitude
    }

    /// Angular frequency ω₀, s⁻¹.
    pub fn omega(&self) -> R {
        self.omega
    }

    /// Wave number k = ω₀/c, cm⁻¹.
    pub fn wave_number(&self) -> R {
        self.k
    }

    /// Wavelength λ = 2π/k, cm.
    pub fn wavelength(&self) -> R {
        R::TWO * R::PI / self.k
    }

    /// Magnitude of **B** at the focus at peak phase: (4/3)·A₀.
    pub fn focal_field(&self) -> R {
        R::from_f64(4.0 / 3.0) * self.amplitude
    }
}

impl<R: Real> DipoleStandingWave<R> {
    /// Builds a tabulated variant of this wave: the radial functions are
    /// precomputed on `nodes` points out to radius `r_max` (cm) and
    /// linearly interpolated — trading the sin/cos evaluations of the
    /// Analytical scenario for two loads and an FMA per function (the
    /// classic optimization between the paper's two scenarios).
    pub fn tabulated(&self, r_max: f64, nodes: usize) -> TabulatedDipoleWave<R> {
        let x_max = self.k.to_f64() * r_max;
        TabulatedDipoleWave {
            wave: *self,
            table: RadialTable::new(x_max, nodes),
        }
    }
}

/// [`DipoleStandingWave`] with table-interpolated radial functions.
///
/// Sampling beyond the tabulated radius clamps to the table edge; size
/// `r_max` generously (the benchmark uses a few wavelengths).
#[derive(Clone, Debug, PartialEq)]
pub struct TabulatedDipoleWave<R> {
    wave: DipoleStandingWave<R>,
    table: RadialTable<R>,
}

impl<R: Real> TabulatedDipoleWave<R> {
    /// The underlying analytical wave.
    pub fn wave(&self) -> &DipoleStandingWave<R> {
        &self.wave
    }

    /// Worst tabulation error of the radial functions (absolute, probed
    /// at interval midpoints).
    pub fn table_error(&self, probes: usize) -> f64 {
        self.table.max_error(probes)
    }
}

impl<R: Real> FieldSampler<R> for TabulatedDipoleWave<R> {
    #[inline]
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R> {
        let w = &self.wave;
        let two_a0 = R::TWO * w.amplitude;
        let (sin_t, cos_t) = (w.omega * time).sin_cos();
        let u = w.k * pos.norm2().sqrt();
        let e_coef = two_a0 * cos_t * w.k * self.table.f1_over_x(u);
        let e = Vec3::new(-pos.y * e_coef, pos.x * e_coef, R::ZERO);
        let b_coef = -two_a0 * sin_t * w.k * w.k * self.table.f2_over_x2(u);
        let b = Vec3::new(
            b_coef * pos.x * pos.z,
            b_coef * pos.y * pos.z,
            b_coef * pos.z * pos.z - two_a0 * sin_t * self.table.f3(u),
        );
        EB { e, b }
    }
}

impl<R: Real> FieldSampler<R> for DipoleStandingWave<R> {
    #[inline]
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R> {
        let two_a0 = R::TWO * self.amplitude;
        let (sin_t, cos_t) = (self.omega * time).sin_cos();
        let r2 = pos.norm2();
        let u = self.k * r2.sqrt(); // kR

        // E = 2A₀·cos(ωt)·k·(f1(u)/u)·(−y, x, 0); f1(u)/u = f1(kR)/(kR),
        // so f1(kR)/R = k·f1_over_x(u) — finite at the focus.
        let e_coef = two_a0 * cos_t * self.k * f1_over_x(u);
        let e = Vec3::new(-pos.y * e_coef, pos.x * e_coef, R::ZERO);

        // B transverse: −2A₀·sin(ωt)·k²·(f2(u)/u²)·(xz, yz, z²) with the
        // f3 term added to Bz. f2(kR)/R² = k²·f2_over_x2(u).
        let b_coef = -two_a0 * sin_t * self.k * self.k * f2_over_x2(u);
        let b = Vec3::new(
            b_coef * pos.x * pos.z,
            b_coef * pos.y * pos.z,
            b_coef * pos.z * pos.z - two_a0 * sin_t * f3(u),
        );
        EB { e, b }
    }
}

impl<R: Real> BatchSampler<R> for DipoleStandingWave<R> {
    /// Straight-line per-lane evaluation. The time-dependent factors
    /// (`2A₀`, `sin ωt`, `cos ωt`) are loop-invariant pure computations,
    /// so hoisting them keeps every per-element arithmetic sequence
    /// bitwise-identical to [`FieldSampler::sample`].
    fn sample_into(&self, xs: &[R], ys: &[R], zs: &[R], time: R, out: &mut EbSlices<'_, R>) {
        let two_a0 = R::TWO * self.amplitude;
        let (sin_t, cos_t) = (self.omega * time).sin_cos();
        // bounds: the runtime slices xs/ys/zs and every EbSlices lane to the
        // same chunk length, so `i < xs.len()` indexes all of them in range.
        for i in 0..xs.len() {
            let (x, y, z) = (xs[i], ys[i], zs[i]);
            let r2 = Vec3::new(x, y, z).norm2();
            let u = self.k * r2.sqrt();
            let e_coef = two_a0 * cos_t * self.k * f1_over_x(u);
            out.ex[i] = -y * e_coef;
            out.ey[i] = x * e_coef;
            out.ez[i] = R::ZERO;
            let b_coef = -two_a0 * sin_t * self.k * self.k * f2_over_x2(u);
            out.bx[i] = b_coef * x * z;
            out.by[i] = b_coef * y * z;
            out.bz[i] = b_coef * z * z - two_a0 * sin_t * f3(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_math::constants::{BENCH_OMEGA, BENCH_POWER, BENCH_WAVELENGTH};

    fn wave() -> DipoleStandingWave<f64> {
        DipoleStandingWave::new(BENCH_POWER, BENCH_OMEGA)
    }

    /// Central-difference spatial derivative of a field component.
    fn partial(
        w: &DipoleStandingWave<f64>,
        pos: Vec3<f64>,
        t: f64,
        axis: usize,
        comp: impl Fn(&EB<f64>) -> f64,
        h: f64,
    ) -> f64 {
        let mut hi = pos;
        let mut lo = pos;
        hi[axis] += h;
        lo[axis] -= h;
        (comp(&w.sample(hi, t)) - comp(&w.sample(lo, t))) / (2.0 * h)
    }

    fn curl(
        w: &DipoleStandingWave<f64>,
        pos: Vec3<f64>,
        t: f64,
        field: impl Fn(&EB<f64>) -> Vec3<f64> + Copy,
        h: f64,
    ) -> Vec3<f64> {
        let d = |axis: usize, comp: usize| partial(w, pos, t, axis, |f| field(f)[comp], h);
        Vec3::new(d(1, 2) - d(2, 1), d(2, 0) - d(0, 2), d(0, 1) - d(1, 0))
    }

    fn test_points() -> Vec<Vec3<f64>> {
        let l = BENCH_WAVELENGTH;
        vec![
            Vec3::new(0.21 * l, -0.13 * l, 0.33 * l),
            Vec3::new(-0.42 * l, 0.17 * l, -0.08 * l),
            Vec3::new(0.05 * l, 0.04 * l, 0.02 * l),
            Vec3::new(0.9 * l, 0.6 * l, -0.7 * l),
        ]
    }

    #[test]
    fn divergence_of_b_vanishes() {
        let w = wave();
        let t = 0.37 / BENCH_OMEGA + std::f64::consts::FRAC_PI_2 / BENCH_OMEGA;
        let h = BENCH_WAVELENGTH * 1e-4;
        for pos in test_points() {
            let div = partial(&w, pos, t, 0, |f| f.b.x, h)
                + partial(&w, pos, t, 1, |f| f.b.y, h)
                + partial(&w, pos, t, 2, |f| f.b.z, h);
            let scale = w.sample(pos, t).b.norm() / BENCH_WAVELENGTH + 1.0;
            assert!(div.abs() / scale < 1e-4, "∇·B = {div} at {pos}");
        }
    }

    #[test]
    fn divergence_of_e_vanishes() {
        let w = wave();
        let t = 0.11 / BENCH_OMEGA;
        let h = BENCH_WAVELENGTH * 1e-4;
        for pos in test_points() {
            let div = partial(&w, pos, t, 0, |f| f.e.x, h)
                + partial(&w, pos, t, 1, |f| f.e.y, h)
                + partial(&w, pos, t, 2, |f| f.e.z, h);
            let scale = w.sample(pos, t).e.norm() / BENCH_WAVELENGTH + 1.0;
            assert!(div.abs() / scale < 1e-4, "∇·E = {div} at {pos}");
        }
    }

    #[test]
    fn faraday_law_holds() {
        // ∇×E = −(1/c)∂B/∂t, with B ∝ sin(ωt): ∂B/∂t = ω·B(t)/tan(ωt)…
        // easier: evaluate ∂B/∂t by central difference in time.
        let w = wave();
        let t = 0.23 / BENCH_OMEGA;
        let h = BENCH_WAVELENGTH * 1e-4;
        let dt = 1e-4 / BENCH_OMEGA;
        for pos in test_points() {
            let curl_e = curl(&w, pos, t, |f| f.e, h);
            let db_dt = (w.sample(pos, t + dt).b - w.sample(pos, t - dt).b) / (2.0 * dt);
            let rhs = -db_dt / LIGHT_VELOCITY;
            let scale = curl_e.norm().max(rhs.norm()).max(1e-30);
            assert!(
                (curl_e - rhs).norm() / scale < 1e-4,
                "Faraday violated at {pos}: {curl_e} vs {rhs}"
            );
        }
    }

    #[test]
    fn ampere_law_holds_in_vacuum() {
        // ∇×B = (1/c)∂E/∂t away from sources (the standing wave is
        // source-free everywhere).
        let w = wave();
        let t = 0.41 / BENCH_OMEGA;
        let h = BENCH_WAVELENGTH * 1e-4;
        let dt = 1e-4 / BENCH_OMEGA;
        for pos in test_points() {
            let curl_b = curl(&w, pos, t, |f| f.b, h);
            let de_dt = (w.sample(pos, t + dt).e - w.sample(pos, t - dt).e) / (2.0 * dt);
            let rhs = de_dt / LIGHT_VELOCITY;
            let scale = curl_b.norm().max(rhs.norm()).max(1e-30);
            assert!(
                (curl_b - rhs).norm() / scale < 1e-4,
                "Ampère violated at {pos}: {curl_b} vs {rhs}"
            );
        }
    }

    #[test]
    fn focus_field_is_axial_b() {
        let w = wave();
        let quarter_period = 0.5 * std::f64::consts::PI / BENCH_OMEGA;
        let f = w.sample(Vec3::zero(), quarter_period);
        assert_eq!(f.e, Vec3::zero());
        assert_eq!(f.b.x, 0.0);
        assert_eq!(f.b.y, 0.0);
        // |Bz| = (4/3)A₀·sin(ωt) = (4/3)A₀ at the quarter period.
        assert!((f.b.z.abs() - w.focal_field()).abs() / w.focal_field() < 1e-9);
    }

    #[test]
    fn field_is_axisymmetric() {
        // Rotating the observation point about z rotates E and the
        // transverse B accordingly; |E|, |B| are invariant.
        let w = wave();
        let t = 0.19 / BENCH_OMEGA;
        let p = Vec3::new(0.3 * BENCH_WAVELENGTH, 0.0, 0.2 * BENCH_WAVELENGTH);
        let a = w.sample(p, t);
        let (s, c) = (1.1f64).sin_cos();
        let q = Vec3::new(c * p.x, s * p.x, p.z);
        let b = w.sample(q, t);
        assert!((a.e.norm() - b.e.norm()).abs() / (a.e.norm() + 1e-30) < 1e-12);
        assert!((a.b.norm() - b.b.norm()).abs() / (a.b.norm() + 1e-30) < 1e-12);
        assert!((a.b.z - b.b.z).abs() / (a.b.z.abs() + 1e-30) < 1e-12);
    }

    #[test]
    fn amplitude_matches_paper_formula() {
        let w = wave();
        let k = BENCH_OMEGA / LIGHT_VELOCITY;
        let expect = k * (3.0 * BENCH_POWER / LIGHT_VELOCITY).sqrt();
        assert!((w.amplitude() - expect).abs() / expect < 1e-14);
        // Sanity: for 0.1 PW the focal field is in the relativistic regime
        // (a₀ ≫ 1 for a 0.9 µm wave) but below the Schwinger field.
        assert!(w.focal_field() > 1e9);
        assert!(w.focal_field() < 4.4e13);
    }

    #[test]
    fn continuity_across_series_handover() {
        // kR = 1 is the series/closed-form boundary; the field must be
        // continuous through it.
        let w = wave();
        let t = 0.3 / BENCH_OMEGA;
        let k = w.wave_number();
        let dir = Vec3::new(0.6, 0.5, 0.624695).normalized();
        let a = w.sample(dir * (0.999999 / k), t);
        let b = w.sample(dir * (1.000001 / k), t);
        assert!((a.e - b.e).norm() / (a.e.norm() + 1e-30) < 1e-4);
        assert!((a.b - b.b).norm() / (a.b.norm() + 1e-30) < 1e-4);
    }

    #[test]
    fn single_precision_is_close_to_double() {
        let wd = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let wf = DipoleStandingWave::<f32>::new(BENCH_POWER, BENCH_OMEGA);
        let t = 0.27 / BENCH_OMEGA;
        for pos in test_points() {
            let d = wd.sample(pos, t);
            let f = wf.sample(
                Vec3::new(pos.x as f32, pos.y as f32, pos.z as f32),
                t as f32,
            );
            let scale = d.e.norm().max(d.b.norm());
            assert!((d.e.x - f.e.x as f64).abs() / scale < 1e-4);
            assert!((d.b.z - f.b.z as f64).abs() / scale < 1e-4);
        }
    }

    #[test]
    fn tabulated_wave_matches_analytical() {
        let w = wave();
        let tab = w.tabulated(4.0 * BENCH_WAVELENGTH, 16384);
        assert!(tab.table_error(5000) < 1e-7);
        let t = 0.37 / BENCH_OMEGA;
        for pos in test_points() {
            let exact = w.sample(pos, t);
            let approx = tab.sample(pos, t);
            let scale = exact.e.norm().max(exact.b.norm()).max(1e-30);
            assert!(
                (exact.e - approx.e).norm() / scale < 1e-6,
                "E mismatch at {pos}"
            );
            assert!(
                (exact.b - approx.b).norm() / scale < 1e-6,
                "B mismatch at {pos}"
            );
        }
        assert_eq!(tab.wave(), &w);
    }

    #[test]
    #[should_panic(expected = "negative power")]
    fn negative_power_panics() {
        let _ = DipoleStandingWave::<f64>::new(-1.0, BENCH_OMEGA);
    }

    fn assert_batch_matches_scalar<R: Real>(time_scale: f64) {
        let w = DipoleStandingWave::<R>::new(BENCH_POWER, BENCH_OMEGA);
        let pts = test_points();
        let t = R::from_f64(time_scale / BENCH_OMEGA);
        let n = pts.len();
        let xs: Vec<R> = pts.iter().map(|p| R::from_f64(p.x)).collect();
        let ys: Vec<R> = pts.iter().map(|p| R::from_f64(p.y)).collect();
        let zs: Vec<R> = pts.iter().map(|p| R::from_f64(p.z)).collect();
        let mut comp = vec![R::ZERO; 6 * n];
        let (e_part, b_part) = comp.split_at_mut(3 * n);
        let (ex, eyz) = e_part.split_at_mut(n);
        let (ey, ez) = eyz.split_at_mut(n);
        let (bx, byz) = b_part.split_at_mut(n);
        let (by, bz) = byz.split_at_mut(n);
        let mut out = EbSlices {
            ex,
            ey,
            ez,
            bx,
            by,
            bz,
        };
        w.sample_into(&xs, &ys, &zs, t, &mut out);
        for i in 0..n {
            let f = w.sample(Vec3::new(xs[i], ys[i], zs[i]), t);
            assert_eq!(out.ex[i], f.e.x, "ex lane {i}");
            assert_eq!(out.ey[i], f.e.y, "ey lane {i}");
            assert_eq!(out.ez[i], f.e.z, "ez lane {i}");
            assert_eq!(out.bx[i], f.b.x, "bx lane {i}");
            assert_eq!(out.by[i], f.b.y, "by lane {i}");
            assert_eq!(out.bz[i], f.b.z, "bz lane {i}");
        }
    }

    #[test]
    fn batched_dipole_sampling_is_bitwise_identical() {
        assert_batch_matches_scalar::<f64>(0.37);
        assert_batch_matches_scalar::<f32>(0.37);
        assert_batch_matches_scalar::<f64>(0.0);
    }
}

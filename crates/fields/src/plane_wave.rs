//! Linearly polarized plane electromagnetic wave.

use crate::sampler::{FieldSampler, EB};
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::{Real, Vec3};

/// A linearly polarized plane wave
/// `E = E₀·pol·cos(k·r − ωt + φ)`, `B = n × E`,
/// propagating along the unit vector `n` with `k = ω/c · n`.
///
/// In vacuum, |E| = |B| in Gaussian units, which the constructor enforces
/// by construction.
///
/// # Example
///
/// ```
/// use pic_fields::{FieldSampler, PlaneWave};
/// use pic_math::Vec3;
///
/// // x-propagating, y-polarized wave.
/// let w = PlaneWave::new(1.0_f64, 2.1e15, Vec3::new(1.0, 0.0, 0.0),
///                        Vec3::new(0.0, 1.0, 0.0), 0.0);
/// let f = w.sample(Vec3::zero(), 0.0);
/// assert!((f.e.y - 1.0).abs() < 1e-12);  // E along polarization
/// assert!((f.b.z - 1.0).abs() < 1e-12);  // B = n × E
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlaneWave<R> {
    amplitude: R,
    omega: R,
    direction: Vec3<R>,
    polarization: Vec3<R>,
    phase: R,
}

impl<R: Real> PlaneWave<R> {
    /// Creates a plane wave.
    ///
    /// `direction` and `polarization` are normalized internally; the
    /// component of `polarization` along `direction` is removed so the wave
    /// is always transverse.
    ///
    /// # Panics
    ///
    /// Panics if `direction` is zero, or if `polarization` is parallel to
    /// `direction` (no transverse component).
    pub fn new(
        amplitude: R,
        omega: R,
        direction: Vec3<R>,
        polarization: Vec3<R>,
        phase: R,
    ) -> PlaneWave<R> {
        assert!(direction.norm() > R::ZERO, "PlaneWave: zero direction");
        let n = direction.normalized();
        let transverse = polarization - n * polarization.dot(n);
        assert!(
            transverse.norm() > R::ZERO,
            "PlaneWave: polarization parallel to direction"
        );
        PlaneWave {
            amplitude,
            omega,
            direction: n,
            polarization: transverse.normalized(),
            phase,
        }
    }

    /// Wave angular frequency ω, s⁻¹.
    pub fn omega(&self) -> R {
        self.omega
    }

    /// Wave number k = ω/c, cm⁻¹.
    pub fn wave_number(&self) -> R {
        self.omega / R::from_f64(LIGHT_VELOCITY)
    }

    /// Wavelength 2π/k, cm.
    pub fn wavelength(&self) -> R {
        R::TWO * R::PI / self.wave_number()
    }

    /// Peak field amplitude E₀.
    pub fn amplitude(&self) -> R {
        self.amplitude
    }
}

impl<R: Real> FieldSampler<R> for PlaneWave<R> {
    #[inline]
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R> {
        let k = self.wave_number();
        let arg = k * self.direction.dot(pos) - self.omega * time + self.phase;
        let e = self.polarization * (self.amplitude * arg.cos());
        let b = self.direction.cross(e);
        EB { e, b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> PlaneWave<f64> {
        PlaneWave::new(
            2.0,
            2.1e15,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
        )
    }

    #[test]
    fn transverse_and_equal_magnitude() {
        let w = wave();
        for &(z, t) in &[(0.0, 0.0), (1e-4, 1e-15), (3e-4, 7e-15)] {
            let f = w.sample(Vec3::new(0.0, 0.0, z), t);
            assert!(f.e.dot(Vec3::new(0.0, 0.0, 1.0)).abs() < 1e-12);
            assert!(f.b.dot(Vec3::new(0.0, 0.0, 1.0)).abs() < 1e-12);
            assert!((f.e.norm() - f.b.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn propagates_at_light_speed() {
        // The field at (0, t0) equals the field at (c·t0 ẑ, 2·t0)… shifted
        // by one propagation time.
        let w = wave();
        let t0 = 3.3e-16;
        let a = w.sample(Vec3::zero(), 0.0);
        let b = w.sample(Vec3::new(0.0, 0.0, LIGHT_VELOCITY * t0), t0);
        assert!((a.e.x - b.e.x).abs() < 1e-9);
    }

    #[test]
    fn wavelength_matches_omega() {
        let w = wave();
        let lam = w.wavelength();
        assert!((lam / pic_math::constants::MICRON - 0.897).abs() < 0.01);
    }

    #[test]
    fn polarization_is_orthogonalized() {
        // A polarization with a longitudinal component gets projected.
        let w = PlaneWave::new(
            1.0_f64,
            1e15,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 5.0),
            0.0,
        );
        let f = w.sample(Vec3::zero(), 0.0);
        assert!(f.e.z.abs() < 1e-12);
        assert!((f.e.x - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parallel to direction")]
    fn longitudinal_polarization_panics() {
        let _ = PlaneWave::new(
            1.0_f64,
            1e15,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, 2.0),
            0.0,
        );
    }

    #[test]
    fn phase_shifts_the_field() {
        let base = wave();
        let shifted = PlaneWave::new(
            2.0,
            2.1e15,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 0.0),
            std::f64::consts::PI,
        );
        let a = base.sample(Vec3::zero(), 0.0).e.x;
        let b = shifted.sample(Vec3::zero(), 0.0).e.x;
        assert!((a + b).abs() < 1e-12);
    }
}

//! Paraxial focused Gaussian beam.
//!
//! The m-dipole wave is the *ultimate* focusing limit (paper §5.2,
//! Ref. \[24]); real experiments mostly use focused Gaussian beams. This source
//! provides the standard paraxial TEM₀₀ mode so examples and tests can
//! compare dynamics in the two focusing geometries.
//!
//! Fields (propagation +z, polarization x, Gaussian units):
//!
//! ```text
//! E_x = E₀ (w₀/w) exp(−ρ²/w²) cos(kz − ωt + kρ²/(2R) − ψ)
//! B_y = E_x  (plane-wave relation; valid to leading paraxial order)
//! ```
//!
//! with waist `w(z) = w₀√(1+(z/z_R)²)`, Gouy phase `ψ = atan(z/z_R)`,
//! curvature `R(z) = z(1+(z_R/z)²)` and Rayleigh range `z_R = kw₀²/2`.

use crate::sampler::{FieldSampler, EB};
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::{Real, Vec3};

/// A paraxial x-polarized Gaussian beam focused at the origin, propagating
/// along +z.
///
/// # Example
///
/// ```
/// use pic_fields::{FieldSampler, GaussianBeam};
/// use pic_math::Vec3;
///
/// let beam = GaussianBeam::<f64>::new(1.0, 2.1e15, 2.0e-4);
/// let on_axis = beam.sample(Vec3::zero(), 0.0);
/// let off_axis = beam.sample(Vec3::new(4.0e-4, 0.0, 0.0), 0.0);
/// assert!(on_axis.e.x.abs() > off_axis.e.x.abs());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianBeam<R> {
    amplitude: R,
    omega: R,
    waist: R,
}

impl<R: Real> GaussianBeam<R> {
    /// Creates a beam with peak focal field `amplitude` (statvolt/cm),
    /// angular frequency `omega` (s⁻¹) and waist radius `waist` (cm).
    ///
    /// # Panics
    ///
    /// Panics if `omega` or `waist` is not positive, or if the waist is
    /// below a wavelength (the paraxial expansion breaks down there — use
    /// [`crate::DipoleStandingWave`] for tight focusing).
    pub fn new(amplitude: f64, omega: f64, waist: f64) -> GaussianBeam<R> {
        assert!(omega > 0.0, "GaussianBeam: non-positive omega");
        assert!(waist > 0.0, "GaussianBeam: non-positive waist");
        let wavelength = 2.0 * std::f64::consts::PI * LIGHT_VELOCITY / omega;
        assert!(
            waist >= wavelength,
            "GaussianBeam: waist {waist} below a wavelength {wavelength}; paraxial \
             approximation invalid"
        );
        GaussianBeam {
            amplitude: R::from_f64(amplitude),
            omega: R::from_f64(omega),
            waist: R::from_f64(waist),
        }
    }

    /// Wave number k = ω/c, cm⁻¹.
    pub fn wave_number(&self) -> R {
        self.omega / R::from_f64(LIGHT_VELOCITY)
    }

    /// Rayleigh range z_R = k w₀²/2, cm.
    pub fn rayleigh_range(&self) -> R {
        self.wave_number() * self.waist * self.waist * R::HALF
    }

    /// Beam radius w(z), cm.
    pub fn radius_at(&self, z: R) -> R {
        let zr = self.rayleigh_range();
        self.waist * (R::ONE + (z / zr) * (z / zr)).sqrt()
    }
}

impl<R: Real> FieldSampler<R> for GaussianBeam<R> {
    #[inline]
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R> {
        let k = self.wave_number();
        let zr = self.rayleigh_range();
        let z = pos.z;
        let rho2 = pos.x * pos.x + pos.y * pos.y;
        let w = self.radius_at(z);
        let w_ratio = self.waist / w;
        let envelope = self.amplitude * w_ratio * (-(rho2 / (w * w))).exp();
        // Gouy phase and wavefront curvature.
        let gouy = atan(z / zr);
        let curvature_phase = if z == R::ZERO {
            R::ZERO
        } else {
            let r_curv = z * (R::ONE + (zr / z) * (zr / z));
            k * rho2 / (R::TWO * r_curv)
        };
        let phase = k * z - self.omega * time + curvature_phase - gouy;
        let ex = envelope * phase.cos();
        EB {
            e: Vec3::new(ex, R::ZERO, R::ZERO),
            b: Vec3::new(R::ZERO, ex, R::ZERO),
        }
    }
}

/// `atan` via `f64` (the [`Real`] trait does not carry inverse trig; a
/// double-precision detour is exact for `f32` and loses nothing for
/// `f64`).
#[inline]
fn atan<R: Real>(x: R) -> R {
    R::from_f64(x.to_f64().atan())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beam() -> GaussianBeam<f64> {
        GaussianBeam::new(5.0, 2.1e15, 3.0e-4)
    }

    #[test]
    fn peak_is_at_the_focus() {
        let b = beam();
        let focus = b.sample(Vec3::zero(), 0.0).e.x;
        assert!((focus - 5.0).abs() < 1e-12);
        for &(x, z) in &[(1e-4, 0.0), (0.0, 5e-3), (2e-4, 1e-3)] {
            let f = b.sample(Vec3::new(x, 0.0, z), 0.0).e.x.abs();
            assert!(f < 5.0, "field at ({x},{z}) = {f}");
        }
    }

    #[test]
    fn waist_growth_follows_rayleigh_law() {
        let b = beam();
        let zr = b.rayleigh_range();
        assert!((b.radius_at(zr) - 3.0e-4 * 2.0f64.sqrt()).abs() < 1e-10);
        assert!((b.radius_at(0.0) - 3.0e-4).abs() < 1e-18);
        // On-axis amplitude halves in intensity at z_R: E ∝ 1/√2.
        // Scan a carrier period for the envelope maximum.
        let mut max_e = 0.0f64;
        for i in 0..200 {
            let t = i as f64 / 200.0 * 2.0 * std::f64::consts::PI / 2.1e15;
            max_e = max_e.max(b.sample(Vec3::new(0.0, 0.0, zr), t).e.x.abs());
        }
        assert!(
            (max_e - 5.0 / 2.0f64.sqrt()).abs() / 5.0 < 0.01,
            "E(z_R) = {max_e}"
        );
    }

    #[test]
    fn transverse_profile_is_gaussian() {
        let b = beam();
        let w0 = 3.0e-4;
        let e0 = b.sample(Vec3::zero(), 0.0).e.x;
        let e1 = b.sample(Vec3::new(w0, 0.0, 0.0), 0.0).e.x;
        assert!((e1 / e0 - (-1.0f64).exp()).abs() < 1e-12);
        // Axisymmetric.
        let ey = b.sample(Vec3::new(0.0, w0, 0.0), 0.0).e.x;
        assert!((e1 - ey).abs() < 1e-15);
    }

    #[test]
    fn propagates_along_z_at_c() {
        let b = beam();
        let t0 = 1.0e-15;
        let a = b.sample(Vec3::zero(), 0.0).e.x;
        let c = b.sample(Vec3::new(0.0, 0.0, LIGHT_VELOCITY * t0), t0).e.x;
        // Far inside the Rayleigh range the carrier just translates
        // (envelope and Gouy drift are higher order).
        assert!((a - c).abs() / a.abs() < 1e-3);
    }

    #[test]
    fn e_and_b_are_plane_wave_related() {
        let b = beam();
        let f = b.sample(Vec3::new(1e-4, -2e-4, 3e-3), 0.7e-15);
        assert_eq!(f.e.x, f.b.y);
        assert_eq!(f.e.y, 0.0);
        assert_eq!(f.b.x, 0.0);
    }

    #[test]
    #[should_panic(expected = "paraxial")]
    fn subwavelength_waist_panics() {
        let _ = GaussianBeam::<f64>::new(1.0, 2.1e15, 1.0e-5);
    }
}

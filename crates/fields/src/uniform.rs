//! Uniform (constant in space and time) fields — the standard test source
//! for pusher verification (gyration, E-acceleration, E×B drift).

use crate::sampler::{FieldSampler, EB};
use pic_math::{Real, Vec3};

/// A spatially and temporally constant electromagnetic field.
///
/// # Example
///
/// ```
/// use pic_fields::{FieldSampler, UniformFields};
/// use pic_math::Vec3;
///
/// let f = UniformFields::magnetic(Vec3::new(0.0_f64, 0.0, 1.0e3));
/// let v = f.sample(Vec3::splat(123.0), 4.56);
/// assert_eq!(v.e, Vec3::zero());
/// assert_eq!(v.b.z, 1.0e3);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UniformFields<R> {
    /// The constant electric field.
    pub e: Vec3<R>,
    /// The constant magnetic field.
    pub b: Vec3<R>,
}

impl<R: Real> UniformFields<R> {
    /// Creates a uniform field from both vectors.
    pub fn new(e: Vec3<R>, b: Vec3<R>) -> UniformFields<R> {
        UniformFields { e, b }
    }

    /// A purely electric uniform field.
    pub fn electric(e: Vec3<R>) -> UniformFields<R> {
        UniformFields { e, b: Vec3::zero() }
    }

    /// A purely magnetic uniform field.
    pub fn magnetic(b: Vec3<R>) -> UniformFields<R> {
        UniformFields { e: Vec3::zero(), b }
    }
}

impl<R: Real> FieldSampler<R> for UniformFields<R> {
    #[inline(always)]
    fn sample(&self, _pos: Vec3<R>, _time: R) -> EB<R> {
        EB {
            e: self.e,
            b: self.b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = Vec3::new(1.0_f32, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(
            UniformFields::new(e, b).sample(Vec3::zero(), 0.0),
            EB::new(e, b)
        );
        assert_eq!(UniformFields::electric(e).b, Vec3::zero());
        assert_eq!(UniformFields::magnetic(b).e, Vec3::zero());
    }

    #[test]
    fn independent_of_position_and_time() {
        let f = UniformFields::new(Vec3::new(1.0_f64, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let a = f.sample(Vec3::zero(), 0.0);
        let b = f.sample(Vec3::splat(1e10), 1e10);
        assert_eq!(a, b);
    }
}

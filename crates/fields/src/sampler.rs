//! The field-sampling abstraction shared by all sources.

use pic_math::{Real, Vec3};

/// An electromagnetic field value at a point: the pair (**E**, **B**) in
/// CGS units (statvolt/cm for both).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EB<R> {
    /// Electric field.
    pub e: Vec3<R>,
    /// Magnetic field.
    pub b: Vec3<R>,
}

impl<R: Real> EB<R> {
    /// A zero field.
    pub fn zero() -> EB<R> {
        EB {
            e: Vec3::zero(),
            b: Vec3::zero(),
        }
    }

    /// Creates a field value from its two vectors.
    pub fn new(e: Vec3<R>, b: Vec3<R>) -> EB<R> {
        EB { e, b }
    }

    /// Electromagnetic energy density (E² + B²)/8π, erg/cm³.
    pub fn energy_density(&self) -> R {
        (self.e.norm2() + self.b.norm2()) / (R::from_f64(8.0) * R::PI)
    }
}

/// A source of electromagnetic field values, sampled at a position and
/// time — the "Analytical Fields" side of the paper's benchmark.
///
/// Implementations must be `Send + Sync`: the parallel runtime samples the
/// same source concurrently from many worker threads.
pub trait FieldSampler<R: Real>: Send + Sync {
    /// Returns (**E**, **B**) at position `pos` (cm) and time `time` (s).
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R>;
}

/// A sampler can be shared by reference.
impl<R: Real, S: FieldSampler<R> + ?Sized> FieldSampler<R> for &S {
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R> {
        (**self).sample(pos, time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_density_of_unit_fields() {
        let f = EB::<f64>::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let expect = 2.0 / (8.0 * std::f64::consts::PI);
        assert!((f.energy_density() - expect).abs() < 1e-15);
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(EB::<f32>::zero(), EB::default());
        assert_eq!(EB::<f32>::zero().energy_density(), 0.0);
    }

    #[test]
    fn sampler_usable_through_reference() {
        struct Constant;
        impl FieldSampler<f64> for Constant {
            fn sample(&self, _: Vec3<f64>, _: f64) -> EB<f64> {
                EB::new(Vec3::splat(1.0), Vec3::zero())
            }
        }
        fn total_e<S: FieldSampler<f64>>(s: S) -> f64 {
            s.sample(Vec3::zero(), 0.0).e.norm2()
        }
        let c = Constant;
        assert_eq!(total_e(&c), 3.0);
        assert_eq!(total_e(&c), 3.0); // still owned by caller
    }
}

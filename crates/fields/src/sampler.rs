//! The field-sampling abstraction shared by all sources.

use pic_math::{Real, Vec3};

/// An electromagnetic field value at a point: the pair (**E**, **B**) in
/// CGS units (statvolt/cm for both).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EB<R> {
    /// Electric field.
    pub e: Vec3<R>,
    /// Magnetic field.
    pub b: Vec3<R>,
}

impl<R: Real> EB<R> {
    /// A zero field.
    pub fn zero() -> EB<R> {
        EB {
            e: Vec3::zero(),
            b: Vec3::zero(),
        }
    }

    /// Creates a field value from its two vectors.
    pub fn new(e: Vec3<R>, b: Vec3<R>) -> EB<R> {
        EB { e, b }
    }

    /// Electromagnetic energy density (E² + B²)/8π, erg/cm³.
    pub fn energy_density(&self) -> R {
        (self.e.norm2() + self.b.norm2()) / (R::from_f64(8.0) * R::PI)
    }
}

/// A source of electromagnetic field values, sampled at a position and
/// time — the "Analytical Fields" side of the paper's benchmark.
///
/// Implementations must be `Send + Sync`: the parallel runtime samples the
/// same source concurrently from many worker threads.
pub trait FieldSampler<R: Real>: Send + Sync {
    /// Returns (**E**, **B**) at position `pos` (cm) and time `time` (s).
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R>;
}

/// A sampler can be shared by reference.
impl<R: Real, S: FieldSampler<R> + ?Sized> FieldSampler<R> for &S {
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R> {
        (**self).sample(pos, time)
    }
}

/// Destination slices for one lane-block of field values, one component
/// per slice (structure-of-arrays, mirroring `SoaEnsemble`).
///
/// All six slices must have the same length as the position slices
/// passed alongside them; batch samplers write every element.
pub struct EbSlices<'a, R> {
    /// Electric field x components.
    pub ex: &'a mut [R],
    /// Electric field y components.
    pub ey: &'a mut [R],
    /// Electric field z components.
    pub ez: &'a mut [R],
    /// Magnetic field x components.
    pub bx: &'a mut [R],
    /// Magnetic field y components.
    pub by: &'a mut [R],
    /// Magnetic field z components.
    pub bz: &'a mut [R],
}

/// Extension of [`FieldSampler`] that fills a whole lane-block of field
/// values per call, so the hot sweep loop can evaluate fields as
/// vectorizable component loops instead of one [`EB`] at a time.
///
/// The default implementation loops over [`FieldSampler::sample`] and is
/// bitwise-identical to per-particle sampling by construction; samplers
/// with a profitable straight-line form (the analytical m-dipole)
/// override it with hoisted, per-lane component loops that keep the
/// exact same arithmetic order per element.
pub trait BatchSampler<R: Real>: FieldSampler<R> {
    /// Samples the field at `(xs[i], ys[i], zs[i], time)` for every `i`
    /// and writes the components into `out`.
    fn sample_into(&self, xs: &[R], ys: &[R], zs: &[R], time: R, out: &mut EbSlices<'_, R>) {
        // bounds: the runtime slices xs/ys/zs and every EbSlices lane to the
        // same chunk length, so `i < xs.len()` indexes all of them in range.
        for i in 0..xs.len() {
            let f = self.sample(Vec3::new(xs[i], ys[i], zs[i]), time);
            out.ex[i] = f.e.x;
            out.ey[i] = f.e.y;
            out.ez[i] = f.e.z;
            out.bx[i] = f.b.x;
            out.by[i] = f.b.y;
            out.bz[i] = f.b.z;
        }
    }
}

/// A batch sampler can be shared by reference.
impl<R: Real, S: BatchSampler<R> + ?Sized> BatchSampler<R> for &S {
    fn sample_into(&self, xs: &[R], ys: &[R], zs: &[R], time: R, out: &mut EbSlices<'_, R>) {
        (**self).sample_into(xs, ys, zs, time, out)
    }
}

// Samplers without a profitable straight-line form keep the per-point
// default; listing them here keeps the `BatchSampler` universe closed
// over every in-crate `FieldSampler`.
impl<R: Real> BatchSampler<R> for crate::dipole::TabulatedDipoleWave<R> {}
impl<R: Real> BatchSampler<R> for crate::dipole_pulse::DipolePulse<R> {}
impl<R: Real> BatchSampler<R> for crate::gaussian_beam::GaussianBeam<R> {}
impl<R: Real> BatchSampler<R> for crate::grid::EmGrid<R> {}
impl<R: Real> BatchSampler<R> for crate::plane_wave::PlaneWave<R> {}
impl<R: Real> BatchSampler<R> for crate::uniform::UniformFields<R> {}
impl<R: Real, S: FieldSampler<R>, E: crate::envelope::Envelope> BatchSampler<R>
    for crate::envelope::Enveloped<S, E>
{
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_density_of_unit_fields() {
        let f = EB::<f64>::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let expect = 2.0 / (8.0 * std::f64::consts::PI);
        assert!((f.energy_density() - expect).abs() < 1e-15);
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(EB::<f32>::zero(), EB::default());
        assert_eq!(EB::<f32>::zero().energy_density(), 0.0);
    }

    #[test]
    fn sampler_usable_through_reference() {
        struct Constant;
        impl FieldSampler<f64> for Constant {
            fn sample(&self, _: Vec3<f64>, _: f64) -> EB<f64> {
                EB::new(Vec3::splat(1.0), Vec3::zero())
            }
        }
        fn total_e<S: FieldSampler<f64>>(s: S) -> f64 {
            s.sample(Vec3::zero(), 0.0).e.norm2()
        }
        let c = Constant;
        assert_eq!(total_e(&c), 3.0);
        assert_eq!(total_e(&c), 3.0); // still owned by caller
    }

    #[test]
    fn default_batch_sampling_matches_per_point() {
        struct Linear;
        impl FieldSampler<f64> for Linear {
            fn sample(&self, pos: Vec3<f64>, time: f64) -> EB<f64> {
                EB::new(pos * 2.0, Vec3::new(time, -pos.y, pos.z * pos.x))
            }
        }
        impl BatchSampler<f64> for Linear {}
        let xs = [0.5, -1.0, 3.25];
        let ys = [2.0, 0.0, -0.125];
        let zs = [-4.0, 1.5, 0.75];
        let (mut ex, mut ey, mut ez) = ([0.0; 3], [0.0; 3], [0.0; 3]);
        let (mut bx, mut by, mut bz) = ([0.0; 3], [0.0; 3], [0.0; 3]);
        let mut out = EbSlices {
            ex: &mut ex,
            ey: &mut ey,
            ez: &mut ez,
            bx: &mut bx,
            by: &mut by,
            bz: &mut bz,
        };
        Linear.sample_into(&xs, &ys, &zs, 0.25, &mut out);
        for i in 0..3 {
            let f = Linear.sample(Vec3::new(xs[i], ys[i], zs[i]), 0.25);
            assert_eq!(ex[i], f.e.x);
            assert_eq!(ey[i], f.e.y);
            assert_eq!(ez[i], f.e.z);
            assert_eq!(bx[i], f.b.x);
            assert_eq!(by[i], f.b.y);
            assert_eq!(bz[i], f.b.z);
        }
    }
}

//! Temporal envelopes: pulsed variants of any field source.
//!
//! The paper's physical setting is a *pulsed* multi-PW m-dipole wave that
//! "can ionize matter at its leading edge and pull unbound electrons to
//! the wave focus" (§5.2); the benchmark itself uses the steady standing
//! wave. This module supplies the pulse machinery: an [`Envelope`] scales
//! a carrier [`FieldSampler`] by a slowly varying amplitude (the standard
//! slowly-varying-envelope approximation — exact Maxwell consistency holds
//! in the limit of envelopes long compared to the carrier period).

use crate::sampler::{FieldSampler, EB};
use pic_math::{Real, Vec3};

/// A time-dependent amplitude factor in `[0, 1]`.
pub trait Envelope: Send + Sync {
    /// Amplitude multiplier at time `t` (seconds).
    fn amplitude(&self, t: f64) -> f64;
}

/// Constant unit amplitude (continuous wave).
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct ConstantEnvelope;

impl Envelope for ConstantEnvelope {
    fn amplitude(&self, _t: f64) -> f64 {
        1.0
    }
}

/// Gaussian pulse `exp(−(t−t₀)²/(2σ²))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianEnvelope {
    /// Pulse centre, s.
    pub center: f64,
    /// Standard deviation σ, s.
    pub sigma: f64,
}

impl Envelope for GaussianEnvelope {
    fn amplitude(&self, t: f64) -> f64 {
        let d = (t - self.center) / self.sigma;
        (-0.5 * d * d).exp()
    }
}

/// Smooth sin² turn-on: 0 before `start`, 1 after `start + rise`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sin2Ramp {
    /// Ramp start, s.
    pub start: f64,
    /// Ramp duration, s.
    pub rise: f64,
}

impl Envelope for Sin2Ramp {
    fn amplitude(&self, t: f64) -> f64 {
        if t <= self.start {
            0.0
        } else if t >= self.start + self.rise {
            1.0
        } else {
            let x = (t - self.start) / self.rise;
            let s = (0.5 * std::f64::consts::PI * x).sin();
            s * s
        }
    }
}

/// A carrier field scaled by an envelope.
///
/// # Example
///
/// ```
/// use pic_fields::envelope::{Enveloped, Sin2Ramp};
/// use pic_fields::{FieldSampler, UniformFields};
/// use pic_math::Vec3;
///
/// let pulsed = Enveloped {
///     carrier: UniformFields::<f64>::electric(Vec3::new(2.0, 0.0, 0.0)),
///     envelope: Sin2Ramp { start: 0.0, rise: 1.0e-15 },
/// };
/// assert_eq!(pulsed.sample(Vec3::zero(), 0.0).e.x, 0.0);       // before ramp
/// assert_eq!(pulsed.sample(Vec3::zero(), 2.0e-15).e.x, 2.0);   // after ramp
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Enveloped<S, E> {
    /// The underlying field.
    pub carrier: S,
    /// The temporal envelope.
    pub envelope: E,
}

impl<R: Real, S: FieldSampler<R>, E: Envelope> FieldSampler<R> for Enveloped<S, E> {
    #[inline]
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R> {
        let f = self.carrier.sample(pos, time);
        let a = R::from_f64(self.envelope.amplitude(time.to_f64()));
        EB {
            e: f.e * a,
            b: f.b * a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dipole::DipoleStandingWave;
    use crate::uniform::UniformFields;
    use pic_math::constants::{BENCH_OMEGA, BENCH_POWER};

    #[test]
    fn constant_envelope_is_identity() {
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let pulsed = Enveloped {
            carrier: wave,
            envelope: ConstantEnvelope,
        };
        let pos = Vec3::new(1e-5, -2e-5, 3e-5);
        let t = 0.4 / BENCH_OMEGA;
        assert_eq!(pulsed.sample(pos, t), wave.sample(pos, t));
    }

    #[test]
    fn gaussian_envelope_peaks_at_center() {
        let env = GaussianEnvelope {
            center: 5.0e-15,
            sigma: 2.0e-15,
        };
        assert_eq!(env.amplitude(5.0e-15), 1.0);
        assert!(env.amplitude(0.0) < 0.05);
        assert!(env.amplitude(1.0e-14) < 0.05);
        // Symmetric.
        assert!((env.amplitude(3.0e-15) - env.amplitude(7.0e-15)).abs() < 1e-15);
    }

    #[test]
    fn sin2_ramp_is_monotone_and_smooth() {
        let env = Sin2Ramp {
            start: 1.0e-15,
            rise: 4.0e-15,
        };
        assert_eq!(env.amplitude(0.0), 0.0);
        assert_eq!(env.amplitude(1.0e-15), 0.0);
        assert_eq!(env.amplitude(5.0e-15), 1.0);
        assert_eq!(env.amplitude(9.0e-15), 1.0);
        // Half amplitude at the ramp midpoint: sin²(π/4) = 1/2.
        assert!((env.amplitude(3.0e-15) - 0.5).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 0..=40 {
            let a = env.amplitude(1.0e-15 + 4.0e-15 * i as f64 / 40.0);
            assert!(a >= prev - 1e-15);
            prev = a;
        }
    }

    #[test]
    fn envelope_scales_both_fields() {
        let carrier = UniformFields::<f32>::new(Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 4.0, 0.0));
        let pulsed = Enveloped {
            carrier,
            envelope: GaussianEnvelope {
                center: 0.0,
                sigma: 1.0,
            },
        };
        let f = pulsed.sample(Vec3::zero(), 1.0f32);
        let a = (-0.5f64).exp() as f32;
        assert!((f.e.x - 2.0 * a).abs() < 1e-6);
        assert!((f.b.y - 4.0 * a).abs() < 1e-6);
    }
}

//! The *pulsed* m-dipole wave (paper §5.2 narrative: "the pulsed multi-PW
//! incoming m-dipole wave … when the wave passes through the focus the
//! diverging wave appears").
//!
//! Construction: a time-localized dipole pulse is synthesized as a finite
//! Gaussian-weighted superposition of exact monochromatic standing waves
//!
//! ```text
//! F(r, t) = Σᵢ wᵢ · StandingWave_{ωᵢ}(r, t)
//! ```
//!
//! Each component is an exact vacuum Maxwell solution (see
//! [`crate::DipoleStandingWave`]), so the superposition is too — no
//! slowly-varying-envelope approximation, stable at the focus, converging
//! for `t < 0` and diverging for `t > 0` with peak focal field at `t = 0`.
//! The spectral weights sample `exp(−(ω−ω₀)²/(2σ²))`; the resulting focal
//! field envelope has duration `~1/σ`.

use crate::dipole::DipoleStandingWave;
use crate::sampler::{FieldSampler, EB};
use pic_math::{Real, Vec3};

/// A time-localized standing dipole pulse.
///
/// # Example
///
/// ```
/// use pic_fields::{DipolePulse, FieldSampler};
/// use pic_math::constants::{BENCH_OMEGA, BENCH_POWER};
/// use pic_math::Vec3;
///
/// // A ~10 fs pulse: far before the focus time the field is negligible.
/// let pulse = DipolePulse::<f64>::new(BENCH_POWER, BENCH_OMEGA, 4.0e-15, 33);
/// let focus = Vec3::zero();
/// // Focal B peaks near t = 0 at the carrier's quarter period…
/// let quarter = 0.5 * std::f64::consts::PI / BENCH_OMEGA;
/// let peak = pulse.sample(focus, quarter).b.norm();
/// // …and has died off five envelope widths earlier.
/// let early = pulse.sample(focus, quarter - 60.0e-15).b.norm();
/// assert!(early < 0.01 * peak);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DipolePulse<R> {
    components: Vec<(R, DipoleStandingWave<R>)>,
    duration: f64,
    omega0: f64,
}

impl<R: Real> DipolePulse<R> {
    /// Creates a pulse of peak power `power` (erg/s; sets the amplitude of
    /// the central component as in the CW case), carrier frequency
    /// `omega0` (s⁻¹) and envelope duration `duration` (s, the Gaussian σ
    /// of the focal-field envelope), synthesized from `components`
    /// frequencies (odd count recommended; more components push the
    /// spectral-truncation revival further out in time).
    ///
    /// # Panics
    ///
    /// Panics if `duration` or `omega0` is not positive, `components` is
    /// zero, or the bandwidth would reach non-positive frequencies
    /// (`duration` too short for the carrier).
    pub fn new(power: f64, omega0: f64, duration: f64, components: usize) -> DipolePulse<R> {
        assert!(omega0 > 0.0, "DipolePulse: non-positive omega0");
        assert!(duration > 0.0, "DipolePulse: non-positive duration");
        assert!(components > 0, "DipolePulse: zero components");
        // Time envelope exp(−t²/2σ_t²) ⇔ spectrum σ_ω = 1/σ_t.
        let sigma_omega = 1.0 / duration;
        let span = 3.0 * sigma_omega; // ±3σ covers 99.7% of the spectrum
        assert!(
            omega0 - span > 0.0,
            "DipolePulse: bandwidth reaches ω ≤ 0 (duration {duration} too short \
             for carrier {omega0})"
        );
        let n = components;
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            let frac = if n == 1 {
                0.0
            } else {
                -1.0 + 2.0 * i as f64 / (n - 1) as f64
            };
            let omega = omega0 + span * frac;
            let w = (-(omega - omega0).powi(2) / (2.0 * sigma_omega * sigma_omega)).exp();
            weights.push((omega, w));
            total += w;
        }
        let components = weights
            .into_iter()
            .map(|(omega, w)| {
                (
                    R::from_f64(w / total),
                    DipoleStandingWave::new(power, omega),
                )
            })
            .collect();
        DipolePulse {
            components,
            duration,
            omega0,
        }
    }

    /// Number of spectral components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Envelope duration σ_t, s.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Carrier angular frequency, s⁻¹.
    pub fn carrier(&self) -> f64 {
        self.omega0
    }
}

impl<R: Real> FieldSampler<R> for DipolePulse<R> {
    fn sample(&self, pos: Vec3<R>, time: R) -> EB<R> {
        let mut e = Vec3::splat(R::ZERO);
        let mut b = Vec3::splat(R::ZERO);
        for (w, wave) in &self.components {
            let f = wave.sample(pos, time);
            e += f.e * *w;
            b += f.b * *w;
        }
        EB { e, b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_math::constants::{BENCH_OMEGA, BENCH_POWER, BENCH_WAVELENGTH, LIGHT_VELOCITY};

    fn pulse() -> DipolePulse<f64> {
        DipolePulse::new(BENCH_POWER, BENCH_OMEGA, 5.0e-15, 33)
    }

    #[test]
    fn single_component_reduces_to_standing_wave() {
        let p = DipolePulse::<f64>::new(BENCH_POWER, BENCH_OMEGA, 5.0e-15, 1);
        let w = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let pos = Vec3::new(0.2, -0.1, 0.3) * BENCH_WAVELENGTH;
        for &t in &[0.0, 1.0e-15, 2.5e-15] {
            assert_eq!(p.sample(pos, t), w.sample(pos, t));
        }
    }

    #[test]
    fn focal_field_is_time_localized() {
        let p = pulse();
        let focus = Vec3::zero();
        // B ∝ sin(ωt) crosses zero at exactly t = 0; compare envelope
        // maxima over a carrier period instead of instants.
        let max_around = |t0: f64| -> f64 {
            (0..40)
                .map(|i| {
                    let t = t0 + i as f64 / 40.0 * 2.0 * std::f64::consts::PI / BENCH_OMEGA;
                    p.sample(focus, t).b.norm()
                })
                .fold(0.0, f64::max)
        };
        let early = max_around(-25.0e-15); // −5σ
        let late = max_around(25.0e-15);
        let at_peak = max_around(-1.0e-15);
        assert!(at_peak > 0.0);
        assert!(early < 0.01 * at_peak, "early/{at_peak}: {early}");
        assert!(late < 0.01 * at_peak, "late: {late}");
    }

    #[test]
    fn pulse_converges_through_the_focus() {
        // Before the focus time, the energy sits in a shell that shrinks:
        // compare |B| maxima on spheres of radius 3λ and 1λ at times
        // −3λ/c and −1λ/c — the pulse front moves inward at c.
        let p = pulse();
        let probe = |r: f64, t: f64| -> f64 {
            (0..24)
                .map(|i| {
                    let th = i as f64 / 24.0 * std::f64::consts::PI;
                    let pos = Vec3::new(r * th.sin(), 0.0, r * th.cos());
                    p.sample(pos, t).b.norm().max(p.sample(pos, t).e.norm())
                })
                .fold(0.0, f64::max)
        };
        // The shell width is ~2cσ_t ≈ 3.3λ, so the probe radii must be
        // separated by much more than that.
        let r_out = 10.0 * BENCH_WAVELENGTH;
        let r_in = 2.0 * BENCH_WAVELENGTH;
        let t_out = -r_out / LIGHT_VELOCITY;
        let t_in = -r_in / LIGHT_VELOCITY;
        // At t_out the shell is near r_out, not near r_in…
        assert!(probe(r_out, t_out) > 3.0 * probe(r_in, t_out));
        // …and at t_in it has moved to r_in.
        assert!(probe(r_in, t_in) > probe(r_out, t_in));
    }

    #[test]
    fn superposition_still_satisfies_faraday() {
        // Linearity guarantees it analytically; verify the implementation
        // numerically at one point.
        let p = pulse();
        let pos = Vec3::new(0.31, -0.17, 0.23) * BENCH_WAVELENGTH;
        let t = 1.3e-15;
        let h = BENCH_WAVELENGTH * 1e-4;
        let dt = 1e-4 / BENCH_OMEGA;
        let d = |axis: usize, comp: fn(&EB<f64>) -> f64| -> f64 {
            let mut hi = pos;
            let mut lo = pos;
            hi[axis] += h;
            lo[axis] -= h;
            (comp(&p.sample(hi, t)) - comp(&p.sample(lo, t))) / (2.0 * h)
        };
        let curl_e = Vec3::new(
            d(1, |f| f.e.z) - d(2, |f| f.e.y),
            d(2, |f| f.e.x) - d(0, |f| f.e.z),
            d(0, |f| f.e.y) - d(1, |f| f.e.x),
        );
        let db_dt = (p.sample(pos, t + dt).b - p.sample(pos, t - dt).b) / (2.0 * dt);
        let rhs = -db_dt / LIGHT_VELOCITY;
        let scale = curl_e.norm().max(rhs.norm()).max(1e-30);
        assert!(
            (curl_e - rhs).norm() / scale < 1e-3,
            "Faraday violated: {curl_e} vs {rhs}"
        );
    }

    #[test]
    fn weights_are_normalized() {
        let p = pulse();
        assert_eq!(p.component_count(), 33);
        assert_eq!(p.duration(), 5.0e-15);
        assert_eq!(p.carrier(), BENCH_OMEGA);
        // At the focus at t=0 every component adds coherently: the peak
        // focal B equals the weighted mean of component focal fields.
        let focus_b = p.sample(Vec3::zero(), 0.5 * std::f64::consts::PI / BENCH_OMEGA);
        assert!(focus_b.b.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth reaches")]
    fn too_short_pulse_panics() {
        // σ_t ~ 1 attosecond at a 2.1e15 carrier: spectrum hits ω ≤ 0.
        let _ = DipolePulse::<f64>::new(BENCH_POWER, BENCH_OMEGA, 1.0e-18, 9);
    }
}

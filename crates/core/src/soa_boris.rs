//! Zero-gather SoA Boris kernel — the direct-slice fast path.
//!
//! [`crate::BatchBorisKernel`] pays a gather/scatter round-trip into
//! lane-local arrays even when the store is already a
//! [`pic_particles::SoaEnsemble`]: every particle is copied out through
//! `get`, updated, and copied back through `set`. This module removes
//! that round-trip. [`SoaBorisKernel`] runs the Boris update as
//! straight-line per-lane loops *directly over the SoA component
//! columns* obtained from [`ParticleAccess::soa_lanes_mut`]: unit-stride
//! loads, unit-stride stores, no gather, no scatter, and fields sampled
//! a lane-block at a time through [`FieldSource::field_block`].
//!
//! The arithmetic order per lane is exactly that of [`BorisPusher`]
//! (the hoisted species constants and time factors are loop-invariant
//! pure computations), so fast-path and scalar runs produce
//! bitwise-identical trajectories — property-tested below. On non-SoA
//! collections the kernel degrades gracefully to the scalar per-view
//! path.

use crate::boris::BorisPusher;
use crate::kernel::FieldSource;
use crate::pusher::{gamma_of_u, half_kick_coef, momentum_from_u, u_from_momentum, Pusher};
use pic_fields::EbSlices;
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::{Real, Vec3};
use pic_particles::{
    ParticleAccess, ParticleKernel, ParticleView, SoaLanesMut, SpeciesId, SpeciesTable,
};

pub use crate::batch::LANES;

/// Fixed-width array views of one block of [`LANES`] lanes.
///
/// Narrowing every column to `&mut [R; LANES]` once per block makes the
/// hot loop's trip count a compile-time constant and removes all bounds
/// checks from its body — the difference between vertical SIMD and
/// scalar code on wide-FMA targets.
struct Block<'b, R> {
    x: &'b mut [R; LANES],
    y: &'b mut [R; LANES],
    z: &'b mut [R; LANES],
    px: &'b mut [R; LANES],
    py: &'b mut [R; LANES],
    pz: &'b mut [R; LANES],
    gamma: &'b mut [R; LANES],
    species: &'b [SpeciesId; LANES],
}

impl<'b, R: Real> Block<'b, R> {
    /// Views the block of lanes `[start, start + LANES)`. Callers
    /// guarantee the block is in bounds (`run_lanes` iterates full
    /// blocks only).
    #[inline(always)]
    fn at(lanes: &'b mut SoaLanesMut<'_, R>, start: usize) -> Self {
        // bounds: `run_lanes` only forms full blocks (`start + LANES <= len`),
        // so every `col[start..]` slice holds at least LANES elements.
        #[inline(always)]
        fn arr<T>(col: &mut [T], start: usize) -> &mut [T; LANES] {
            match col[start..].first_chunk_mut::<LANES>() {
                Some(a) => a,
                // analyze: allow(purity-panic): cold branch — unreachable by
                // the full-block invariant above, kept as a loud guard.
                None => unreachable!("lane block out of bounds"),
            }
        }
        let species = match lanes.species[start..].first_chunk::<LANES>() {
            Some(a) => a,
            // analyze: allow(purity-panic): cold branch — unreachable by the
            // full-block invariant above, kept as a loud guard.
            None => unreachable!("lane block out of bounds"),
        };
        Block {
            x: arr(lanes.x, start),
            y: arr(lanes.y, start),
            z: arr(lanes.z, start),
            px: arr(lanes.px, start),
            py: arr(lanes.py, start),
            pz: arr(lanes.pz, start),
            gamma: arr(lanes.gamma, start),
            species,
        }
    }
}

/// The zero-gather SoA Boris kernel.
///
/// Being a [`ParticleKernel`], it drops into every place the scalar
/// [`crate::PushKernel`] fits — including the parallel runtime, which
/// invokes kernels through [`ParticleKernel::apply_chunk`] so this
/// kernel's whole-chunk override takes the direct-slice path on SoA
/// chunks automatically.
#[derive(Clone, Copy, Debug)]
pub struct SoaBorisKernel<'a, R, F> {
    source: &'a F,
    table: &'a SpeciesTable<R>,
    dt: R,
    time: R,
}

impl<'a, R: Real, F: FieldSource<R>> SoaBorisKernel<'a, R, F> {
    /// Creates a kernel for one sweep at simulation time `time`.
    pub fn new(source: &'a F, table: &'a SpeciesTable<R>, dt: R, time: R) -> Self {
        SoaBorisKernel {
            source,
            table,
            dt,
            time,
        }
    }

    /// Advances every particle behind `lanes` by one step, operating
    /// directly on the component columns. Full blocks of [`LANES`]
    /// particles run the straight-line vectorizable loop; the
    /// `len % LANES` remainder runs the reference scalar path.
    pub fn run_lanes(&self, lanes: &mut SoaLanesMut<'_, R>) {
        // bounds: all SoA columns share length `n` (checked at SoaLanesMut
        // construction); both loops below index strictly below `n`.
        let n = lanes.x.len();
        let blocks = n / LANES;
        for b in 0..blocks {
            self.lane_block(lanes, b * LANES);
        }
        // Scalar remainder, bitwise-identical by construction: it *is*
        // the reference implementation.
        for i in (blocks * LANES)..n {
            let species = self.table.get(lanes.species[i]);
            let pos = Vec3::new(lanes.x[i], lanes.y[i], lanes.z[i]);
            let field = self.source.field(lanes.base + i, pos, self.time);
            let eps = half_kick_coef(species, self.dt);
            let p_old = Vec3::new(lanes.px[i], lanes.py[i], lanes.pz[i]);
            let u_old = u_from_momentum(p_old, species.mass);
            let (u_new, _gamma_n) = BorisPusher::rotate_kick(u_old, &field, eps);
            let gamma_new = gamma_of_u(u_new);
            let p_new = momentum_from_u(u_new, species.mass);
            let v = p_new / (gamma_new * species.mass);
            lanes.px[i] = p_new.x;
            lanes.py[i] = p_new.y;
            lanes.pz[i] = p_new.z;
            lanes.gamma[i] = gamma_new;
            lanes.x[i] = pos.x + v.x * self.dt;
            lanes.y[i] = pos.y + v.y * self.dt;
            lanes.z[i] = pos.z + v.z * self.dt;
        }
    }

    /// One full block of [`LANES`] particles starting at column index
    /// `start`: species constants, then a blocked field sample, then the
    /// straight-line Boris update written back in place.
    ///
    /// Every column is narrowed to a `&mut [R; LANES]` array view first:
    /// with the trip count a compile-time constant and no bounds checks
    /// left in the loop body, the update loop below compiles to pure
    /// vertical SIMD on targets with wide FMA.
    #[inline]
    fn lane_block(&self, lanes: &mut SoaLanesMut<'_, R>, start: usize) {
        // bounds: every index in this fn is `[l]` with `l in 0..LANES` into
        // `[R; LANES]` block-local arrays or the Block's LANES-sized column
        // views — in range by construction.
        let base = lanes.base;
        let Block {
            x,
            y,
            z,
            px,
            py,
            pz,
            gamma,
            species,
        } = Block::at(lanes, start);
        // Loop-invariant species constants, one lane each. These are the
        // exact expressions the scalar helpers evaluate per particle.
        let mut eps = [R::ZERO; LANES];
        let mut inv_mc = [R::ZERO; LANES];
        let mut mc = [R::ZERO; LANES];
        let mut mass = [R::ZERO; LANES];
        for l in 0..LANES {
            let sp = self.table.get(species[l]);
            eps[l] = half_kick_coef(sp, self.dt);
            inv_mc[l] = (sp.mass * R::from_f64(LIGHT_VELOCITY)).recip();
            mc[l] = sp.mass * R::from_f64(LIGHT_VELOCITY);
            mass[l] = sp.mass;
        }

        // Blocked field sample straight out of the position columns.
        let mut ex = [R::ZERO; LANES];
        let mut ey = [R::ZERO; LANES];
        let mut ez = [R::ZERO; LANES];
        let mut bx = [R::ZERO; LANES];
        let mut by = [R::ZERO; LANES];
        let mut bz = [R::ZERO; LANES];
        {
            let mut out = EbSlices {
                ex: &mut ex,
                ey: &mut ey,
                ez: &mut ez,
                bx: &mut bx,
                by: &mut by,
                bz: &mut bz,
            };
            self.source
                .field_block(base + start, &x[..], &y[..], &z[..], self.time, &mut out);
        }

        // Load: u = p/(mc), straight out of the momentum columns at unit
        // stride into block-local arrays.
        let mut ux = [R::ZERO; LANES];
        let mut uy = [R::ZERO; LANES];
        let mut uz = [R::ZERO; LANES];
        for l in 0..LANES {
            ux[l] = px[l] * inv_mc[l];
            uy[l] = py[l] * inv_mc[l];
            uz[l] = pz[l] * inv_mc[l];
        }

        // Compute: straight-line per-lane Boris over block-local arrays
        // only — no column references in the body, which is what lets the
        // compiler turn the unrolled block into vertical SIMD. Same op
        // order as BorisPusher::push, lane by lane.
        let mut unx = [R::ZERO; LANES];
        let mut uny = [R::ZERO; LANES];
        let mut unz = [R::ZERO; LANES];
        let mut gam = [R::ZERO; LANES];
        for l in 0..LANES {
            // Half electric kick: u⁻ = u + ε·E.
            let umx = ex[l].mul_add(eps[l], ux[l]);
            let umy = ey[l].mul_add(eps[l], uy[l]);
            let umz = ez[l].mul_add(eps[l], uz[l]);
            let gamma_n = (R::ONE + (umx * umx + umy * umy + umz * umz)).sqrt();
            let coef = eps[l] / gamma_n;
            let tx = bx[l] * coef;
            let ty = by[l] * coef;
            let tz = bz[l] * coef;
            let t2 = tx * tx + ty * ty + tz * tz;
            let sc = R::TWO / (R::ONE + t2);
            let sx = tx * sc;
            let sy = ty * sc;
            let sz = tz * sc;
            // u' = u⁻ + u⁻ × t
            let upx = umx + (umy * tz - umz * ty);
            let upy = umy + (umz * tx - umx * tz);
            let upz = umz + (umx * ty - umy * tx);
            // u⁺ = u⁻ + u' × s
            let uqx = umx + (upy * sz - upz * sy);
            let uqy = umy + (upz * sx - upx * sz);
            let uqz = umz + (upx * sy - upy * sx);
            // Second half kick.
            unx[l] = ex[l].mul_add(eps[l], uqx);
            uny[l] = ey[l].mul_add(eps[l], uqy);
            unz[l] = ez[l].mul_add(eps[l], uqz);
            gam[l] = (R::ONE + (unx[l] * unx[l] + uny[l] * uny[l] + unz[l] * unz[l])).sqrt();
        }

        // Store: p = u·mc, v = p/(γm), x += v·dt — written straight back
        // to the columns at unit stride.
        for l in 0..LANES {
            let pnx = unx[l] * mc[l];
            let pny = uny[l] * mc[l];
            let pnz = unz[l] * mc[l];
            let denom = gam[l] * mass[l];
            let vx = pnx / denom;
            let vy = pny / denom;
            let vz = pnz / denom;
            px[l] = pnx;
            py[l] = pny;
            pz[l] = pnz;
            gamma[l] = gam[l];
            x[l] += vx * self.dt;
            y[l] += vy * self.dt;
            z[l] += vz * self.dt;
        }
    }

    /// Scalar reference update of one particle through its view — the
    /// same sequence [`BorisPusher::push`] performs.
    #[inline(always)]
    fn push_view<V: ParticleView<R>>(&self, index: usize, view: &mut V) {
        let field = self.source.field(index, view.position(), self.time);
        let species = self.table.get(view.species());
        BorisPusher.push(view, &field, species, self.dt);
    }
}

impl<R: Real, F: FieldSource<R>> ParticleKernel<R> for SoaBorisKernel<'_, R, F> {
    #[inline(always)]
    fn apply<V: ParticleView<R>>(&mut self, index: usize, view: &mut V) {
        self.push_view(index, view);
    }

    fn apply_chunk<A: ParticleAccess<R>>(&mut self, chunk: &mut A) {
        match chunk.soa_lanes_mut() {
            Some(mut lanes) => self.run_lanes(&mut lanes),
            None => chunk.for_each_mut(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AnalyticalSource, PrecalculatedSource, PushKernel};
    use pic_fields::{DipoleStandingWave, PrecalculatedFields};
    use pic_math::constants::{BENCH_OMEGA, BENCH_POWER, BENCH_WAVELENGTH};
    use pic_particles::{Particle, SoaEnsemble, SpeciesId};
    use proptest::prelude::*;

    const DIPOLE_SPECIES: [SpeciesId; 2] =
        [SpeciesTable::<f64>::ELECTRON, SpeciesTable::<f64>::POSITRON];

    /// Builds one particle from raw proptest scalars at precision `R`.
    fn particle<R: Real>(raw: &(f64, f64, f64, f64, f64, f64, u8)) -> Particle<R> {
        let (x, y, z, ux, uy, uz, sp) = *raw;
        let species = DIPOLE_SPECIES[(sp % 2) as usize];
        let table = SpeciesTable::<R>::with_standard_species();
        let mass = table.get(species).mass;
        let u = Vec3::new(R::from_f64(ux), R::from_f64(uy), R::from_f64(uz));
        let momentum = momentum_from_u(u, mass);
        let mut p = Particle::at_rest(
            Vec3::new(
                R::from_f64(x * BENCH_WAVELENGTH),
                R::from_f64(y * BENCH_WAVELENGTH),
                R::from_f64(z * BENCH_WAVELENGTH),
            ),
            R::ONE,
            species,
        );
        p.momentum = momentum;
        p.gamma = gamma_of_u(u);
        p
    }

    /// Runs `steps` of scalar vs fast path at precision `R` and asserts
    /// bitwise-equal trajectories.
    fn assert_parity<R: Real>(raw: &[(f64, f64, f64, f64, f64, f64, u8)], steps: usize) {
        let table = SpeciesTable::<R>::with_standard_species();
        let wave = DipoleStandingWave::<R>::new(BENCH_POWER, BENCH_OMEGA);
        let source = AnalyticalSource::new(&wave);
        let dt = R::from_f64(0.005 * 2.0 * std::f64::consts::PI / BENCH_OMEGA);

        let mut scalar: SoaEnsemble<R> = raw.iter().map(particle::<R>).collect();
        let mut fast: SoaEnsemble<R> = raw.iter().map(particle::<R>).collect();

        let mut k = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
        let mut time = R::ZERO;
        for _ in 0..steps {
            scalar.for_each_mut(&mut k);
            k.advance_time();

            let mut fk = SoaBorisKernel::new(&source, &table, dt, time);
            fk.apply_chunk(&mut fast);
            time += dt;
        }
        for i in 0..scalar.len() {
            assert_eq!(scalar.get(i), fast.get(i), "particle {i} diverged");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Bitwise trajectory parity over random states — f64, with
        /// lengths spanning full blocks and a scalar remainder tail.
        #[test]
        fn fast_path_bitwise_matches_scalar_f64(
            raw in prop::collection::vec(
                (-0.9f64..0.9, -0.9f64..0.9, -0.9f64..0.9,
                 -5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0, 0u8..2),
                1..40),
        ) {
            assert_parity::<f64>(&raw, 4);
        }

        /// Same, single precision.
        #[test]
        fn fast_path_bitwise_matches_scalar_f32(
            raw in prop::collection::vec(
                (-0.9f64..0.9, -0.9f64..0.9, -0.9f64..0.9,
                 -5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0, 0u8..2),
                1..40),
        ) {
            assert_parity::<f32>(&raw, 4);
        }
    }

    #[test]
    fn remainder_tail_lengths_are_exact() {
        // Deterministic spot-check of every tail length around one block.
        for n in [1, 7, 8, 9, 15, 16, 17] {
            let raw: Vec<(f64, f64, f64, f64, f64, f64, u8)> = (0..n)
                .map(|i| {
                    let s = 0.05 * (i as f64 + 1.0);
                    (0.3 - s, s - 0.2, 0.1 + s, s, -s, 0.5 * s, (i % 2) as u8)
                })
                .collect();
            assert_parity::<f64>(&raw, 3);
            assert_parity::<f32>(&raw, 3);
        }
    }

    #[test]
    fn precalculated_fast_path_matches_scalar() {
        // The contiguous-slice field_block override must agree with the
        // per-index path bit for bit.
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let raw: Vec<(f64, f64, f64, f64, f64, f64, u8)> = (0..21)
            .map(|i| {
                let s = 0.04 * (i as f64 + 1.0);
                (s - 0.4, 0.4 - s, 0.2 * s, -s, s, 2.0 * s, (i % 2) as u8)
            })
            .collect();
        let mut scalar: SoaEnsemble<f64> = raw.iter().map(particle::<f64>).collect();
        let mut fast: SoaEnsemble<f64> = raw.iter().map(particle::<f64>).collect();
        let positions: Vec<Vec3<f64>> = (0..scalar.len()).map(|i| scalar.get(i).position).collect();
        let pre = PrecalculatedFields::from_sampler(&wave, positions, 0.0);
        let dt = 1e-16;

        let src = PrecalculatedSource::new(&pre);
        let mut k = PushKernel::new(src, BorisPusher, &table, dt);
        scalar.for_each_mut(&mut k);
        let mut fk = SoaBorisKernel::new(&src, &table, dt, 0.0);
        fk.apply_chunk(&mut fast);
        for i in 0..scalar.len() {
            assert_eq!(scalar.get(i), fast.get(i), "particle {i}");
        }
    }

    #[test]
    fn chunked_sweep_matches_whole_ensemble() {
        // Splitting into runtime-style chunks (with nonzero base offsets)
        // must not change the result.
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let source = AnalyticalSource::new(&wave);
        let dt = 0.005 * 2.0 * std::f64::consts::PI / BENCH_OMEGA;
        let raw: Vec<(f64, f64, f64, f64, f64, f64, u8)> = (0..53)
            .map(|i| {
                let s = 0.015 * (i as f64 + 1.0);
                (s - 0.4, 0.4 - s, 0.25 * s, s, -0.5 * s, s, (i % 2) as u8)
            })
            .collect();
        let mut whole: SoaEnsemble<f64> = raw.iter().map(particle::<f64>).collect();
        let mut chunked: SoaEnsemble<f64> = raw.iter().map(particle::<f64>).collect();

        let mut k = SoaBorisKernel::new(&source, &table, dt, 0.0);
        k.apply_chunk(&mut whole);
        for chunk in &mut chunked.split_mut(19) {
            let mut kc = SoaBorisKernel::new(&source, &table, dt, 0.0);
            kc.apply_chunk(chunk);
        }
        for i in 0..whole.len() {
            assert_eq!(whole.get(i), chunked.get(i), "particle {i}");
        }
    }

    #[test]
    fn aos_fallback_matches_scalar() {
        // On AoS stores the kernel has no lanes and must take the
        // per-view path — still bitwise-equal to the scalar reference.
        use pic_particles::AosEnsemble;
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let source = AnalyticalSource::new(&wave);
        let dt = 0.005 * 2.0 * std::f64::consts::PI / BENCH_OMEGA;
        let raw: Vec<(f64, f64, f64, f64, f64, f64, u8)> = (0..13)
            .map(|i| {
                let s = 0.06 * (i as f64 + 1.0);
                (s - 0.4, 0.4 - s, 0.3 * s, -s, s, 0.25 * s, (i % 2) as u8)
            })
            .collect();
        let mut scalar: AosEnsemble<f64> = raw.iter().map(particle::<f64>).collect();
        let mut fast: AosEnsemble<f64> = raw.iter().map(particle::<f64>).collect();
        let mut k = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
        scalar.for_each_mut(&mut k);
        let mut fk = SoaBorisKernel::new(&source, &table, dt, 0.0);
        fk.apply_chunk(&mut fast);
        for i in 0..scalar.len() {
            assert_eq!(scalar.get(i), fast.get(i), "particle {i}");
        }
    }
}

//! Push kernels: pusher × field source × species table, packaged as a
//! [`ParticleKernel`] for ensembles and the parallel runtime.
//!
//! The two field sources mirror the paper's benchmark scenarios (§5.2):
//! [`AnalyticalSource`] evaluates closed formulas at every particle
//! position ("Analytical Fields"); [`PrecalculatedSource`] streams a
//! per-particle array computed in advance ("Precalculated Fields").

use crate::pusher::Pusher;
use pic_fields::{BatchSampler, EbSlices, PrecalculatedFields, EB};
use pic_math::{Real, Vec3};
use pic_particles::{ParticleKernel, ParticleView, SpeciesTable};

/// Per-particle field lookup: given the particle's global index and
/// position, produce (**E**, **B**).
pub trait FieldSource<R: Real>: Send + Sync {
    /// Field seen by particle `index` located at `pos` at time `time`.
    fn field(&self, index: usize, pos: Vec3<R>, time: R) -> EB<R>;

    /// Fills one lane-block of field values: element `i` of `out` gets
    /// the field seen by particle `base + i` at `(xs[i], ys[i], zs[i])`.
    ///
    /// The default loops over [`field`](Self::field) and is bitwise-
    /// identical to per-particle lookup; sources with a cheaper blocked
    /// form (batched analytical sampling, contiguous precalculated-array
    /// copies) override it.
    fn field_block(
        &self,
        base: usize,
        xs: &[R],
        ys: &[R],
        zs: &[R],
        time: R,
        out: &mut EbSlices<'_, R>,
    ) {
        // bounds: the runtime slices xs/ys/zs and every EbSlices lane to the
        // same chunk length, so `i < xs.len()` indexes all of them in range.
        for i in 0..xs.len() {
            let f = self.field(base + i, Vec3::new(xs[i], ys[i], zs[i]), time);
            out.ex[i] = f.e.x;
            out.ey[i] = f.e.y;
            out.ez[i] = f.e.z;
            out.bx[i] = f.b.x;
            out.by[i] = f.b.y;
            out.bz[i] = f.b.z;
        }
    }
}

/// The "Analytical Fields" scenario: evaluate a [`FieldSampler`] at the
/// particle position.
#[derive(Clone, Copy, Debug)]
pub struct AnalyticalSource<S> {
    /// The analytical field model.
    pub sampler: S,
}

impl<S> AnalyticalSource<S> {
    /// Wraps a sampler.
    pub fn new(sampler: S) -> AnalyticalSource<S> {
        AnalyticalSource { sampler }
    }
}

impl<R: Real, S: BatchSampler<R>> FieldSource<R> for AnalyticalSource<S> {
    #[inline(always)]
    fn field(&self, _index: usize, pos: Vec3<R>, time: R) -> EB<R> {
        self.sampler.sample(pos, time)
    }

    #[inline]
    fn field_block(
        &self,
        _base: usize,
        xs: &[R],
        ys: &[R],
        zs: &[R],
        time: R,
        out: &mut EbSlices<'_, R>,
    ) {
        self.sampler.sample_into(xs, ys, zs, time, out);
    }
}

/// The "Precalculated Fields" scenario: stream the per-particle array.
#[derive(Clone, Copy, Debug)]
pub struct PrecalculatedSource<'a, R> {
    /// The per-particle field values, indexed by global particle index.
    pub fields: &'a PrecalculatedFields<R>,
}

impl<'a, R: Real> PrecalculatedSource<'a, R> {
    /// Wraps a precalculated array.
    pub fn new(fields: &'a PrecalculatedFields<R>) -> PrecalculatedSource<'a, R> {
        PrecalculatedSource { fields }
    }
}

impl<R: Real> FieldSource<R> for PrecalculatedSource<'_, R> {
    #[inline(always)]
    fn field(&self, index: usize, _pos: Vec3<R>, _time: R) -> EB<R> {
        self.fields.get(index)
    }

    /// Contiguous slice copies instead of per-index [`EB`] assembly: six
    /// streaming `memcpy`s straight out of the SoA field columns.
    #[inline]
    fn field_block(
        &self,
        base: usize,
        xs: &[R],
        _ys: &[R],
        _zs: &[R],
        _time: R,
        out: &mut EbSlices<'_, R>,
    ) {
        let n = xs.len();
        // bounds: the sweep hands out chunks of the same ensemble the
        // precalculated table was built for, so `base + n` never exceeds
        // the stored lane length.
        out.ex.copy_from_slice(&self.fields.exs()[base..base + n]);
        out.ey.copy_from_slice(&self.fields.eys()[base..base + n]);
        out.ez.copy_from_slice(&self.fields.ezs()[base..base + n]);
        out.bx.copy_from_slice(&self.fields.bxs()[base..base + n]);
        out.by.copy_from_slice(&self.fields.bys()[base..base + n]);
        out.bz.copy_from_slice(&self.fields.bzs()[base..base + n]);
    }
}

/// The complete per-particle computation of one time step: field lookup,
/// species lookup, momentum and position update.
///
/// Being a [`ParticleKernel`], the same monomorphized code runs over AoS
/// and SoA ensembles, serially or split into chunks by the runtime —
/// exactly the structure of the paper's templated C++/DPC++ loop body.
///
/// # Example
///
/// ```
/// use pic_boris::{AnalyticalSource, BorisPusher, PushKernel};
/// use pic_fields::UniformFields;
/// use pic_math::Vec3;
/// use pic_particles::{AosEnsemble, Particle, ParticleAccess, ParticleStore, SpeciesTable};
///
/// let table = SpeciesTable::<f64>::with_standard_species();
/// let source = AnalyticalSource::new(UniformFields::electric(Vec3::new(1e-2, 0.0, 0.0)));
/// let mut kernel = PushKernel::new(source, BorisPusher, &table, 1e-13);
///
/// let mut ens = AosEnsemble::from_particles(
///     [Particle::at_rest(Vec3::zero(), 1.0, SpeciesTable::<f64>::ELECTRON)]);
/// ens.for_each_mut(&mut kernel);
/// kernel.advance_time();
/// assert!(ens.get(0).momentum.x != 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct PushKernel<'a, R, F, P> {
    source: F,
    pusher: P,
    table: &'a SpeciesTable<R>,
    dt: R,
    time: R,
}

impl<'a, R: Real, F, P> PushKernel<'a, R, F, P> {
    /// Creates a kernel starting at simulation time 0.
    pub fn new(source: F, pusher: P, table: &'a SpeciesTable<R>, dt: R) -> Self {
        PushKernel {
            source,
            pusher,
            table,
            dt,
            time: R::ZERO,
        }
    }

    /// Time step Δt, s.
    pub fn dt(&self) -> R {
        self.dt
    }

    /// Current simulation time, s.
    pub fn time(&self) -> R {
        self.time
    }

    /// Sets the simulation time (e.g. when resuming).
    pub fn set_time(&mut self, t: R) {
        self.time = t;
    }

    /// Advances the simulation clock by one step. Call once per sweep over
    /// the ensemble.
    pub fn advance_time(&mut self) {
        self.time += self.dt;
    }

    /// The wrapped field source.
    pub fn source(&self) -> &F {
        &self.source
    }

    /// The wrapped pusher.
    pub fn pusher(&self) -> &P {
        &self.pusher
    }
}

impl<R, F, P> ParticleKernel<R> for PushKernel<'_, R, F, P>
where
    R: Real,
    F: FieldSource<R>,
    P: Pusher<R>,
{
    #[inline(always)]
    fn apply<V: ParticleView<R>>(&mut self, index: usize, view: &mut V) {
        let field = self.source.field(index, view.position(), self.time);
        let species = self.table.get(view.species());
        self.pusher.push(view, &field, species, self.dt);
    }
}

/// A shared, immutable variant of [`PushKernel`] for the parallel runtime:
/// each worker thread builds its own mutable [`PushKernel`]-equivalent via
/// [`SharedPushKernel::to_kernel`], because `ParticleKernel::apply` takes
/// `&mut self`.
#[derive(Clone, Copy, Debug)]
pub struct SharedPushKernel<'a, R, F, P> {
    /// Field source shared across threads.
    pub source: &'a F,
    /// Pusher (stateless).
    pub pusher: P,
    /// Species table shared across threads.
    pub table: &'a SpeciesTable<R>,
    /// Time step, s.
    pub dt: R,
    /// Simulation time of this sweep, s.
    pub time: R,
}

impl<'a, R: Real, F, P: Copy> SharedPushKernel<'a, R, F, P> {
    /// Builds the per-thread mutable kernel.
    pub fn to_kernel(&self) -> PushKernel<'a, R, &'a F, P> {
        let mut k = PushKernel::new(self.source, self.pusher, self.table, self.dt);
        k.set_time(self.time);
        k
    }
}

impl<R: Real, S: FieldSource<R> + ?Sized> FieldSource<R> for &S {
    #[inline(always)]
    fn field(&self, index: usize, pos: Vec3<R>, time: R) -> EB<R> {
        (**self).field(index, pos, time)
    }

    #[inline(always)]
    fn field_block(
        &self,
        base: usize,
        xs: &[R],
        ys: &[R],
        zs: &[R],
        time: R,
        out: &mut EbSlices<'_, R>,
    ) {
        (**self).field_block(base, xs, ys, zs, time, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boris::BorisPusher;
    use pic_fields::{DipoleStandingWave, UniformFields};
    use pic_math::constants::{BENCH_OMEGA, BENCH_POWER, BENCH_WAVELENGTH};
    use pic_particles::init::{fill_sphere_at_rest, SphereDist};
    use pic_particles::{AosEnsemble, ParticleAccess, ParticleStore, SoaEnsemble, SpeciesTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bench_ensemble<S: ParticleStore<f64>>(n: usize) -> S {
        let mut s = S::default();
        fill_sphere_at_rest(
            &mut s,
            n,
            &SphereDist {
                center: Vec3::zero(),
                radius: 0.6 * BENCH_WAVELENGTH,
            },
            1.0,
            SpeciesTable::<f64>::ELECTRON,
            &mut StdRng::seed_from_u64(77),
        );
        s
    }

    #[test]
    fn aos_and_soa_trajectories_are_bitwise_identical() {
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let dt = 0.01 * 2.0 * std::f64::consts::PI / BENCH_OMEGA;

        let mut aos: AosEnsemble<f64> = bench_ensemble(200);
        let mut soa: SoaEnsemble<f64> = bench_ensemble(200);

        let mut ka = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
        let mut ks = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
        for _ in 0..20 {
            aos.for_each_mut(&mut ka);
            ka.advance_time();
            soa.for_each_mut(&mut ks);
            ks.advance_time();
        }
        for i in 0..aos.len() {
            assert_eq!(aos.get(i), soa.get(i), "particle {i} diverged");
        }
    }

    #[test]
    fn precalculated_source_reads_by_global_index() {
        let table = SpeciesTable::<f64>::with_standard_species();
        let mut pre = PrecalculatedFields::<f64>::zeros(3);
        pre.set(2, EB::new(Vec3::new(1e-2, 0.0, 0.0), Vec3::zero()));
        let mut kernel =
            PushKernel::new(PrecalculatedSource::new(&pre), BorisPusher, &table, 1e-13);
        let mut ens: AosEnsemble<f64> = bench_ensemble(3);
        ens.for_each_mut(&mut kernel);
        // Only particle 2 sees a nonzero field.
        assert_eq!(ens.get(0).momentum, Vec3::zero());
        assert_eq!(ens.get(1).momentum, Vec3::zero());
        assert!(ens.get(2).momentum.x != 0.0);
    }

    #[test]
    fn precalculated_equals_analytical_when_fields_frozen() {
        // If the precalculated array is built from the sampler at t = t0
        // and the analytical kernel is also held at t0, one step must agree
        // exactly.
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let t0 = 0.3 / BENCH_OMEGA;
        let dt = 1e-16;

        let mut a: SoaEnsemble<f64> = bench_ensemble(100);
        let mut b: SoaEnsemble<f64> = bench_ensemble(100);

        let positions: Vec<Vec3<f64>> = (0..a.len()).map(|i| a.get(i).position).collect();
        let pre = PrecalculatedFields::from_sampler(&wave, positions, t0);

        let mut ka = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
        ka.set_time(t0);
        a.for_each_mut(&mut ka);

        let mut kb = PushKernel::new(PrecalculatedSource::new(&pre), BorisPusher, &table, dt);
        kb.set_time(t0);
        b.for_each_mut(&mut kb);

        for i in 0..a.len() {
            assert_eq!(a.get(i), b.get(i), "particle {i}");
        }
    }

    #[test]
    fn shared_kernel_reconstructs_state() {
        let table = SpeciesTable::<f64>::with_standard_species();
        let field = UniformFields::<f64>::electric(Vec3::new(1e-2, 0.0, 0.0));
        let source = AnalyticalSource::new(field);
        let shared = SharedPushKernel {
            source: &source,
            pusher: BorisPusher,
            table: &table,
            dt: 1e-13,
            time: 5e-13,
        };
        let k = shared.to_kernel();
        assert_eq!(k.time(), 5e-13);
        assert_eq!(k.dt(), 1e-13);
    }

    #[test]
    fn time_advances_per_sweep() {
        let table = SpeciesTable::<f64>::with_standard_species();
        let source = AnalyticalSource::new(UniformFields::<f64>::default());
        let mut k = PushKernel::new(source, BorisPusher, &table, 2.0);
        assert_eq!(k.time(), 0.0);
        k.advance_time();
        k.advance_time();
        assert_eq!(k.time(), 4.0);
    }
}

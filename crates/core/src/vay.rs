//! The Vay (2008) pusher — the first of the two alternative velocity
//! averages surveyed in the paper's Ref. \[11] (Ripperda et al. 2018).
//!
//! Unlike Boris, Vay's choice of the averaged velocity makes the uniform
//! E×B drift *exact* for any time step, at the price of not being a pure
//! rotation in the magnetic substep.

use crate::pusher::{
    advance_position, gamma_of_u, half_kick_coef, momentum_from_u, u_from_momentum, OpTally,
    Pusher, SHARED_TALLY,
};
use pic_fields::EB;
use pic_math::{Real, Vec3};
use pic_particles::{ParticleView, Species};

/// The Vay integrator (J.-L. Vay, Phys. Plasmas 15, 056701, 2008).
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct VayPusher;

impl VayPusher {
    /// Momentum update in dimensionless u = p/(mc) form, with
    /// ε = qΔt/(2mc). Returns the new u.
    #[inline(always)]
    pub fn kick<R: Real>(u_old: Vec3<R>, field: &EB<R>, eps: R) -> Vec3<R> {
        let tau = field.b * eps;
        let gamma_old = gamma_of_u(u_old);
        // First half using the *old* velocity: u' = u + 2ε·E + (u×τ)/γⁿ.
        let u_prime = u_old + field.e * (R::TWO * eps) + u_old.cross(tau) / gamma_old;
        // New Lorentz factor from Vay's quartic resolution.
        let u_star = u_prime.dot(tau);
        let gamma_prime2 = R::ONE + u_prime.norm2();
        let tau2 = tau.norm2();
        let sigma = gamma_prime2 - tau2;
        let gamma_new = ((sigma
            + (sigma * sigma + R::from_f64(4.0) * (tau2 + u_star * u_star)).sqrt())
            * R::HALF)
            .sqrt();
        let t = tau / gamma_new;
        let s = (R::ONE + t.norm2()).recip();
        (u_prime + t * u_prime.dot(t) + u_prime.cross(t)) * s
    }
}

impl<R: Real> Pusher<R> for VayPusher {
    #[inline]
    fn push<V: ParticleView<R>>(&self, view: &mut V, field: &EB<R>, species: &Species<R>, dt: R) {
        let eps = half_kick_coef(species, dt);
        let u_old = u_from_momentum(view.momentum(), species.mass);
        let u_new = Self::kick(u_old, field, eps);
        let gamma_new = gamma_of_u(u_new);
        let p_new = momentum_from_u(u_new, species.mass);
        view.set_momentum(p_new);
        view.set_gamma(gamma_new);
        advance_position(view, p_new, gamma_new, species.mass, dt);
    }

    fn name(&self) -> &'static str {
        "Vay"
    }

    fn tally(&self) -> OpTally {
        // kick: τ (3m), γⁿ (3m+3a+√), u′ (13m+9a+÷), u·τ (3m+2a),
        // γ′² (3m+3a), τ² (3m+2a), σ (1a), quartic γ (4m+3a+2√),
        // t = τ/γ (÷+3m), s (3m+3a+÷), final average (15m+11a).
        SHARED_TALLY.combine(OpTally {
            adds: 37,
            muls: 53,
            divs: 3,
            sqrts: 3,
            ..OpTally::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boris::BorisPusher;
    use pic_math::constants::{ELECTRON_MASS, ELEMENTARY_CHARGE, LIGHT_VELOCITY};
    use pic_particles::{Particle, SpeciesId, SpeciesTable};
    use proptest::prelude::*;

    const EL: SpeciesId = SpeciesTable::<f64>::ELECTRON;

    #[test]
    fn pure_electric_field_gives_exact_impulse() {
        let sp = Species::<f64>::electron();
        let field = EB::new(Vec3::new(1e-2, 0.0, 0.0), Vec3::zero());
        let dt = 1e-13;
        let mut p = Particle::at_rest(Vec3::zero(), 1.0, EL);
        for _ in 0..50 {
            VayPusher.push(&mut p, &field, &sp, dt);
        }
        let expect = sp.charge * 1e-2 * dt * 50.0;
        assert!((p.momentum.x - expect).abs() / expect.abs() < 1e-12);
    }

    #[test]
    fn magnetic_rotation_preserves_momentum_magnitude() {
        // For E = 0 Vay also preserves |u| (the update is a rotation).
        let sp = Species::<f64>::electron();
        let field = EB::new(Vec3::zero(), Vec3::new(0.0, 2e3, 1e3));
        let u0 = Vec3::new(1.5, -0.5, 2.0);
        let mut u = u0;
        for _ in 0..100 {
            u = VayPusher::kick(u, &field, half_kick_coef(&sp, 1e-12));
        }
        assert!((u.norm() - u0.norm()).abs() / u0.norm() < 1e-10);
    }

    #[test]
    fn exb_drift_is_exact_even_for_large_steps() {
        // Start the particle at the exact drift velocity: Vay keeps it
        // there for ANY dt; Boris would make it gyrate.
        let sp = Species::<f64>::electron();
        let b = 1.0e4;
        let e = 1.0e2;
        let field = EB::new(Vec3::new(e, 0.0, 0.0), Vec3::new(0.0, 0.0, b));
        // v_drift = c E×B/B² = −c(E/B) ŷ; for electron drift independent of q.
        let beta = e / b;
        let gamma = 1.0 / (1.0 - beta * beta).sqrt();
        let u_drift = Vec3::new(0.0, -gamma * beta, 0.0);
        // Large step: ω_c·dt ≈ 3.5.
        let dt = 2e-11;
        let mut u = u_drift;
        for _ in 0..20 {
            u = VayPusher::kick(u, &field, half_kick_coef(&sp, dt));
            assert!(
                (u - u_drift).norm() < 1e-10 * u_drift.norm(),
                "Vay left the drift solution: {u}"
            );
        }
    }

    #[test]
    fn boris_violates_large_step_drift_but_vay_does_not() {
        // The contrast test that motivates having both pushers.
        let sp = Species::<f64>::electron();
        let b = 1.0e4;
        let e = 1.0e2;
        let field = EB::new(Vec3::new(e, 0.0, 0.0), Vec3::new(0.0, 0.0, b));
        let beta = e / b;
        let gamma = 1.0 / (1.0 - beta * beta).sqrt();
        let u_drift = Vec3::new(0.0, -gamma * beta, 0.0);
        let dt = 2e-11;
        let eps = half_kick_coef(&sp, dt);
        let u_vay = VayPusher::kick(u_drift, &field, eps);
        let (u_boris, _) = BorisPusher::rotate_kick(u_drift, &field, eps);
        assert!((u_vay - u_drift).norm() / u_drift.norm() < 1e-10);
        // Boris evaluates γ from u⁻ instead of the time-centred momentum,
        // so at ω_c·dt ≈ 3.5 it leaves the drift solution by a measurable
        // amount (~2.6e-4 here) while Vay stays on it to rounding.
        assert!((u_boris - u_drift).norm() / u_drift.norm() > 1e-5);
    }

    #[test]
    fn agrees_with_boris_in_the_small_step_limit() {
        let sp = Species::<f64>::electron();
        let field = EB::new(Vec3::new(5e-3, -2e-3, 1e-3), Vec3::new(1e3, 2e3, -5e2));
        let u0 = Vec3::new(0.3, -0.7, 0.2);
        let omega_c = ELEMENTARY_CHARGE * 2.3e3 / (ELECTRON_MASS * LIGHT_VELOCITY);
        let dt = 1e-4 / omega_c; // tiny fraction of a gyroperiod
        let eps = half_kick_coef(&sp, dt);
        let u_vay = VayPusher::kick(u0, &field, eps);
        let (u_boris, _) = BorisPusher::rotate_kick(u0, &field, eps);
        let step = (u_vay - u0).norm();
        assert!(
            (u_vay - u_boris).norm() < 1e-6 * step,
            "schemes diverge at leading order"
        );
    }

    proptest! {
        #[test]
        fn gamma_finite_and_at_least_one(
            ux in -20.0f64..20.0, uy in -20.0f64..20.0, uz in -20.0f64..20.0,
            ex in -1e3f64..1e3, bz in -1e5f64..1e5,
        ) {
            let sp = Species::<f64>::electron();
            let field = EB::new(Vec3::new(ex, 0.0, 0.0), Vec3::new(0.0, 0.0, bz));
            let u = VayPusher::kick(Vec3::new(ux, uy, uz), &field, half_kick_coef(&sp, 1e-13));
            prop_assert!(u.is_finite());
            prop_assert!(gamma_of_u(u) >= 1.0);
        }
    }
}

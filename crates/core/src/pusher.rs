//! The pusher abstraction shared by all integrators.

use pic_fields::EB;
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::{Real, Vec3};
use pic_particles::{ParticleView, Species};

/// A relativistic particle pusher: advances momentum by one step and the
/// position by one leapfrog step (paper Eqs. 6–7).
///
/// Implementations must update the cached Lorentz factor together with the
/// momentum, preserving the invariant `γ = √(1 + (p/mc)²)`.
pub trait Pusher<R: Real>: Send + Sync {
    /// Advances one particle by `dt` seconds in the field `field`.
    fn push<V: ParticleView<R>>(&self, view: &mut V, field: &EB<R>, species: &Species<R>, dt: R);

    /// Name used in benchmark tables and diagnostics.
    fn name(&self) -> &'static str;

    /// Static per-particle per-step operation tally of `push`, counted
    /// with loop-invariant species constants (ε, mc, 1/mc) hoisted — the
    /// form the vectorized benchmark loop actually executes. Feeds the
    /// telemetry layer and is reconciled against `pic-perfmodel`'s
    /// roofline constants by that crate's tests.
    fn tally(&self) -> OpTally;
}

/// Hand-counted per-particle per-step operations of one `push` call.
///
/// Divisions and square roots are kept separate because their reciprocal
/// throughput on the paper's CPUs is roughly [`OpTally::DIV_WEIGHT`] times
/// an add or multiply; [`OpTally::flop_equivalents`] folds them in with
/// that weight, matching the convention of `pic_perfmodel::KernelCost`.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct OpTally {
    /// Additions and subtractions (fused multiply-adds count one here and
    /// one in `muls`).
    pub adds: u32,
    /// Multiplications.
    pub muls: u32,
    /// Divisions and reciprocals.
    pub divs: u32,
    /// Square roots.
    pub sqrts: u32,
    /// Scalars loaded per particle (particle state + field components).
    pub scalars_read: u32,
    /// Scalars stored per particle.
    pub scalars_written: u32,
}

impl OpTally {
    /// Flop-equivalent weight of one division or square root.
    pub const DIV_WEIGHT: f64 = 8.0;

    /// Total flop-equivalents, with divisions and square roots weighted by
    /// [`OpTally::DIV_WEIGHT`].
    pub fn flop_equivalents(&self) -> f64 {
        f64::from(self.adds + self.muls) + f64::from(self.divs + self.sqrts) * OpTally::DIV_WEIGHT
    }

    /// Bytes read per particle per step at the given scalar width.
    pub fn bytes_read(&self, scalar_bytes: usize) -> f64 {
        f64::from(self.scalars_read) * scalar_bytes as f64
    }

    /// Bytes written per particle per step at the given scalar width.
    pub fn bytes_written(&self, scalar_bytes: usize) -> f64 {
        f64::from(self.scalars_written) * scalar_bytes as f64
    }

    /// Element-wise sum — used by decorating pushers. Memory traffic adds
    /// too: the decorator's extra loads/stores are real even when the data
    /// is cache-hot.
    pub fn combine(self, other: OpTally) -> OpTally {
        OpTally {
            adds: self.adds + other.adds,
            muls: self.muls + other.muls,
            divs: self.divs + other.divs,
            sqrts: self.sqrts + other.sqrts,
            scalars_read: self.scalars_read + other.scalars_read,
            scalars_written: self.scalars_written + other.scalars_written,
        }
    }
}

/// Tally of the plumbing every integrator shares: u = p·(1/mc), the final
/// γ(u), p = u·mc, and the leapfrog position step. Loads are position,
/// momentum and the six field components; stores are momentum, γ and
/// position.
pub const SHARED_TALLY: OpTally = OpTally {
    // gamma_of_u (3a) + position update (3a).
    adds: 6,
    // u scale (3) + γ norm² (3) + p scale (3) + v = p·(dt/(γm)) (1+3+3).
    muls: 16,
    // 1/(γm) in the position update.
    divs: 1,
    sqrts: 1,
    scalars_read: 12,
    scalars_written: 7,
};

/// Advances the position by one leapfrog step: `x += v·dt` with
/// `v = p/(γm)` (paper Eq. 7). Shared by all pushers.
#[inline(always)]
pub fn advance_position<R: Real, V: ParticleView<R>>(
    view: &mut V,
    momentum: Vec3<R>,
    gamma: R,
    mass: R,
    dt: R,
) {
    let v = momentum / (gamma * mass);
    view.set_position(view.position() + v * dt);
}

/// Dimensionless momentum u = p/(mc) and its helpers, shared by the
/// integrators. Forming the ratio before any squaring keeps single
/// precision safe with CGS magnitudes.
#[inline(always)]
pub fn u_from_momentum<R: Real>(p: Vec3<R>, mass: R) -> Vec3<R> {
    p * (mass * R::from_f64(LIGHT_VELOCITY)).recip()
}

/// Converts dimensionless momentum back: p = u·mc.
#[inline(always)]
pub fn momentum_from_u<R: Real>(u: Vec3<R>, mass: R) -> Vec3<R> {
    u * (mass * R::from_f64(LIGHT_VELOCITY))
}

/// γ(u) = √(1 + u²).
#[inline(always)]
pub fn gamma_of_u<R: Real>(u: Vec3<R>) -> R {
    (R::ONE + u.norm2()).sqrt()
}

/// The half-kick coefficient ε = qΔt/(2mc), multiplying **E** to give the
/// change of u per half electric step, and **B** to give the rotation
/// vector τ (paper Eq. 13).
#[inline(always)]
pub fn half_kick_coef<R: Real>(species: &Species<R>, dt: R) -> R {
    species.charge * dt / (R::TWO * species.mass * R::from_f64(LIGHT_VELOCITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_math::constants::{ELECTRON_MASS, ELEMENTARY_CHARGE};
    use pic_particles::{Particle, SpeciesId};

    #[test]
    fn tallies_reflect_algorithm_complexity() {
        use crate::{BorisPusher, HigueraCaryPusher, RadiationReactionPusher, VayPusher};
        let boris = Pusher::<f64>::tally(&BorisPusher).flop_equivalents();
        let vay = Pusher::<f64>::tally(&VayPusher).flop_equivalents();
        let hc = Pusher::<f64>::tally(&HigueraCaryPusher).flop_equivalents();
        let ll =
            Pusher::<f64>::tally(&RadiationReactionPusher::new(BorisPusher)).flop_equivalents();
        // Boris is the cheapest scheme; Vay's quartic + velocity average
        // costs the most of the three; a decorator only adds work.
        assert!(boris < hc && hc < vay, "boris={boris} hc={hc} vay={vay}");
        assert!(ll > boris);
        // All pushers move the same particle state and field components.
        for t in [
            Pusher::<f64>::tally(&BorisPusher),
            Pusher::<f64>::tally(&VayPusher),
            Pusher::<f64>::tally(&HigueraCaryPusher),
        ] {
            assert_eq!(t.scalars_read, 12);
            assert_eq!(t.scalars_written, 7);
        }
    }

    #[test]
    fn tally_arithmetic() {
        let t = OpTally {
            adds: 10,
            muls: 20,
            divs: 2,
            sqrts: 1,
            scalars_read: 4,
            scalars_written: 3,
        };
        assert_eq!(
            t.flop_equivalents(),
            10.0 + 20.0 + 3.0 * OpTally::DIV_WEIGHT
        );
        assert_eq!(t.bytes_read(4), 16.0);
        assert_eq!(t.bytes_written(8), 24.0);
        let sum = t.combine(t);
        assert_eq!(sum.muls, 40);
        assert_eq!(sum.scalars_read, 8);
    }

    #[test]
    fn u_roundtrip() {
        let p = Vec3::new(1e-17_f64, -2e-17, 3e-18);
        let u = u_from_momentum(p, ELECTRON_MASS);
        let back = momentum_from_u(u, ELECTRON_MASS);
        assert!((back - p).norm() / p.norm() < 1e-14);
    }

    #[test]
    fn gamma_of_zero_u_is_one() {
        assert_eq!(gamma_of_u(Vec3::<f64>::zero()), 1.0);
    }

    #[test]
    fn half_kick_sign_follows_charge() {
        let e = Species::<f64>::electron();
        let p = Species::<f64>::positron();
        let dt = 1e-15;
        assert!(half_kick_coef(&e, dt) < 0.0);
        assert!(half_kick_coef(&p, dt) > 0.0);
        assert_eq!(half_kick_coef(&e, dt), -half_kick_coef(&p, dt));
        // Magnitude: eΔt/(2 m c).
        let expect = ELEMENTARY_CHARGE * dt / (2.0 * ELECTRON_MASS * LIGHT_VELOCITY);
        assert!((half_kick_coef(&p, dt) - expect).abs() / expect < 1e-14);
    }

    #[test]
    fn advance_position_moves_along_velocity() {
        let e = Species::<f64>::electron();
        let mut p = Particle::at_rest(Vec3::zero(), 1.0, SpeciesId(0));
        let mom = Vec3::new(ELECTRON_MASS * LIGHT_VELOCITY, 0.0, 0.0); // γ=√2
        let gamma = 2.0f64.sqrt();
        advance_position(&mut p, mom, gamma, e.mass, 1.0e-12);
        // v = p/(γm) = c/√2.
        let expect = LIGHT_VELOCITY / 2.0f64.sqrt() * 1.0e-12;
        assert!((p.position.x - expect).abs() / expect < 1e-14);
    }
}

//! The pusher abstraction shared by all integrators.

use pic_fields::EB;
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::{Real, Vec3};
use pic_particles::{ParticleView, Species};

/// A relativistic particle pusher: advances momentum by one step and the
/// position by one leapfrog step (paper Eqs. 6–7).
///
/// Implementations must update the cached Lorentz factor together with the
/// momentum, preserving the invariant `γ = √(1 + (p/mc)²)`.
pub trait Pusher<R: Real>: Send + Sync {
    /// Advances one particle by `dt` seconds in the field `field`.
    fn push<V: ParticleView<R>>(&self, view: &mut V, field: &EB<R>, species: &Species<R>, dt: R);

    /// Name used in benchmark tables and diagnostics.
    fn name(&self) -> &'static str;
}

/// Advances the position by one leapfrog step: `x += v·dt` with
/// `v = p/(γm)` (paper Eq. 7). Shared by all pushers.
#[inline(always)]
pub fn advance_position<R: Real, V: ParticleView<R>>(
    view: &mut V,
    momentum: Vec3<R>,
    gamma: R,
    mass: R,
    dt: R,
) {
    let v = momentum / (gamma * mass);
    view.set_position(view.position() + v * dt);
}

/// Dimensionless momentum u = p/(mc) and its helpers, shared by the
/// integrators. Forming the ratio before any squaring keeps single
/// precision safe with CGS magnitudes.
#[inline(always)]
pub fn u_from_momentum<R: Real>(p: Vec3<R>, mass: R) -> Vec3<R> {
    p * (mass * R::from_f64(LIGHT_VELOCITY)).recip()
}

/// Converts dimensionless momentum back: p = u·mc.
#[inline(always)]
pub fn momentum_from_u<R: Real>(u: Vec3<R>, mass: R) -> Vec3<R> {
    u * (mass * R::from_f64(LIGHT_VELOCITY))
}

/// γ(u) = √(1 + u²).
#[inline(always)]
pub fn gamma_of_u<R: Real>(u: Vec3<R>) -> R {
    (R::ONE + u.norm2()).sqrt()
}

/// The half-kick coefficient ε = qΔt/(2mc), multiplying **E** to give the
/// change of u per half electric step, and **B** to give the rotation
/// vector τ (paper Eq. 13).
#[inline(always)]
pub fn half_kick_coef<R: Real>(species: &Species<R>, dt: R) -> R {
    species.charge * dt / (R::TWO * species.mass * R::from_f64(LIGHT_VELOCITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_math::constants::{ELECTRON_MASS, ELEMENTARY_CHARGE};
    use pic_particles::{Particle, SpeciesId};

    #[test]
    fn u_roundtrip() {
        let p = Vec3::new(1e-17_f64, -2e-17, 3e-18);
        let u = u_from_momentum(p, ELECTRON_MASS);
        let back = momentum_from_u(u, ELECTRON_MASS);
        assert!((back - p).norm() / p.norm() < 1e-14);
    }

    #[test]
    fn gamma_of_zero_u_is_one() {
        assert_eq!(gamma_of_u(Vec3::<f64>::zero()), 1.0);
    }

    #[test]
    fn half_kick_sign_follows_charge() {
        let e = Species::<f64>::electron();
        let p = Species::<f64>::positron();
        let dt = 1e-15;
        assert!(half_kick_coef(&e, dt) < 0.0);
        assert!(half_kick_coef(&p, dt) > 0.0);
        assert_eq!(half_kick_coef(&e, dt), -half_kick_coef(&p, dt));
        // Magnitude: eΔt/(2 m c).
        let expect = ELEMENTARY_CHARGE * dt / (2.0 * ELECTRON_MASS * LIGHT_VELOCITY);
        assert!((half_kick_coef(&p, dt) - expect).abs() / expect < 1e-14);
    }

    #[test]
    fn advance_position_moves_along_velocity() {
        let e = Species::<f64>::electron();
        let mut p = Particle::at_rest(Vec3::zero(), 1.0, SpeciesId(0));
        let mom = Vec3::new(ELECTRON_MASS * LIGHT_VELOCITY, 0.0, 0.0); // γ=√2
        let gamma = 2.0f64.sqrt();
        advance_position(&mut p, mom, gamma, e.mass, 1.0e-12);
        // v = p/(γm) = c/√2.
        let expect = LIGHT_VELOCITY / 2.0f64.sqrt() * 1.0e-12;
        assert!((p.position.x - expect).abs() / expect < 1e-14);
    }
}

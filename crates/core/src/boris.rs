//! The conventional Boris pusher (paper §2, Eqs. 9–13; Boris 1970).

use crate::pusher::{
    advance_position, gamma_of_u, half_kick_coef, momentum_from_u, u_from_momentum, OpTally,
    Pusher, SHARED_TALLY,
};
use pic_fields::EB;
use pic_math::{Real, Vec3};
use pic_particles::{ParticleView, Species};

/// The Boris integrator: symmetric half-kick / rotation / half-kick
/// splitting of the Lorentz force.
///
/// The magnetic substep is the trigonometric-free rotation of paper
/// Eq. (12)–(13): with `t = qBΔt/(2γⁿmc)` and `s = 2t/(1+t²)`,
///
/// ```text
/// p' = p⁻ + p⁻ × t
/// p⁺ = p⁻ + p' × s
/// ```
///
/// which preserves `|p|` *exactly* (up to rounding) regardless of the step
/// size — the property the paper highlights, verified by this module's
/// property tests.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct BorisPusher;

impl BorisPusher {
    /// Performs the momentum update only, returning the new dimensionless
    /// momentum `u⁺ = p⁺/(mc)` and the Lorentz factor γⁿ used for the
    /// rotation. Exposed for the batch kernel and for tests.
    #[inline(always)]
    pub fn rotate_kick<R: Real>(u_old: Vec3<R>, field: &EB<R>, eps: R) -> (Vec3<R>, R) {
        // Half electric kick (Eq. 9): u⁻ = u + ε·E.
        let u_minus = field.e.mul_add(eps, u_old);
        // γⁿ from u⁻ — equals γ(u⁺) because the rotation preserves |u|.
        let gamma_n = gamma_of_u(u_minus);
        // Rotation vector t = ε·B/γⁿ (Eq. 13).
        let t = field.b * (eps / gamma_n);
        let s = t * (R::TWO / (R::ONE + t.norm2()));
        // Rotation (Eq. 12).
        let u_prime = u_minus + u_minus.cross(t);
        let u_plus = u_minus + u_prime.cross(s);
        // Second half electric kick (Eq. 10).
        (field.e.mul_add(eps, u_plus), gamma_n)
    }
}

impl<R: Real> Pusher<R> for BorisPusher {
    #[inline]
    fn push<V: ParticleView<R>>(&self, view: &mut V, field: &EB<R>, species: &Species<R>, dt: R) {
        let eps = half_kick_coef(species, dt);
        let u_old = u_from_momentum(view.momentum(), species.mass);
        let (u_new, _gamma_n) = Self::rotate_kick(u_old, field, eps);
        let gamma_new = gamma_of_u(u_new);
        let p_new = momentum_from_u(u_new, species.mass);
        view.set_momentum(p_new);
        view.set_gamma(gamma_new);
        advance_position(view, p_new, gamma_new, species.mass, dt);
    }

    fn name(&self) -> &'static str {
        "Boris"
    }

    fn tally(&self) -> OpTally {
        // rotate_kick: two mul_add kicks (2×3m+3a), γⁿ (3m+3a+√),
        // t = B·(ε/γⁿ) (÷+3m), s (3m+2a norm², 1a, ÷, 3m), two
        // cross-and-add rotations (2×6m+6a).
        SHARED_TALLY.combine(OpTally {
            adds: 27,
            muls: 30,
            divs: 2,
            sqrts: 1,
            ..OpTally::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_math::constants::{ELECTRON_MASS, ELEMENTARY_CHARGE, LIGHT_VELOCITY};
    use pic_particles::{Particle, SpeciesId, SpeciesTable};
    use proptest::prelude::*;

    fn electron() -> Species<f64> {
        Species::electron()
    }

    const EL: SpeciesId = SpeciesTable::<f64>::ELECTRON;

    /// Non-relativistic cyclotron frequency, rad/s.
    fn omega_c(b: f64) -> f64 {
        ELEMENTARY_CHARGE * b / (ELECTRON_MASS * LIGHT_VELOCITY)
    }

    #[test]
    fn pure_electric_field_gives_exact_impulse() {
        // With B = 0 the scheme reduces to p += qEΔt exactly, every step.
        let sp = electron();
        let e = Vec3::new(0.0, 2.5e-2, 0.0);
        let field = EB::new(e, Vec3::zero());
        let dt = 1e-13;
        let mut p = Particle::at_rest(Vec3::zero(), 1.0, EL);
        for _ in 0..100 {
            BorisPusher.push(&mut p, &field, &sp, dt);
        }
        let expect = sp.charge * e.y * dt * 100.0;
        assert!((p.momentum.y - expect).abs() / expect.abs() < 1e-12);
        assert_eq!(p.momentum.x, 0.0);
    }

    #[test]
    fn magnetic_rotation_preserves_momentum_magnitude() {
        let sp = electron();
        let b = Vec3::new(0.0, 0.0, 1.0e4);
        let field = EB::new(Vec3::zero(), b);
        let p0 = Vec3::new(3e-18, 0.0, 1e-18);
        let mut p = Particle::new(Vec3::zero(), p0, 1.0, EL, sp.mass);
        // Deliberately large step: |p| must still be preserved.
        let dt = 2.0 / omega_c(b.z);
        for _ in 0..50 {
            BorisPusher.push(&mut p, &field, &sp, dt);
        }
        assert!((p.momentum.norm() - p0.norm()).abs() / p0.norm() < 1e-12);
        // p_z is untouched by rotation about z.
        assert!((p.momentum.z - p0.z).abs() / p0.z < 1e-12);
    }

    #[test]
    fn gyration_frequency_matches_cyclotron() {
        // A non-relativistic electron in Bz gyrates at ω_c = eB/(mcγ).
        let sp = electron();
        let b = 1.0e3; // G
        let field = EB::new(Vec3::zero(), Vec3::new(0.0, 0.0, b));
        let p_mag = 1e-3 * ELECTRON_MASS * LIGHT_VELOCITY; // β ≈ 1e-3
        let mut p = Particle::new(Vec3::zero(), Vec3::new(p_mag, 0.0, 0.0), 1.0, EL, sp.mass);
        let period = 2.0 * std::f64::consts::PI / omega_c(b);
        let steps = 1000;
        let dt = period / steps as f64;
        for _ in 0..steps {
            BorisPusher.push(&mut p, &field, &sp, dt);
        }
        // After one full period the momentum direction returns (O(dt²)
        // phase error).
        let angle = (p.momentum.x / p_mag).clamp(-1.0, 1.0).acos();
        assert!(angle < 1e-4, "phase error {angle}");
    }

    #[test]
    fn gyroradius_matches_theory() {
        let sp = electron();
        let b = 5.0e3;
        let field = EB::new(Vec3::zero(), Vec3::new(0.0, 0.0, b));
        let p_mag = 1e-2 * ELECTRON_MASS * LIGHT_VELOCITY;
        let mut p = Particle::new(Vec3::zero(), Vec3::new(p_mag, 0.0, 0.0), 1.0, EL, sp.mass);
        let r_expect = p_mag * LIGHT_VELOCITY / (ELEMENTARY_CHARGE * b); // p⊥c/(eB)
        let period = 2.0 * std::f64::consts::PI / omega_c(b);
        let steps = 2000;
        let dt = period / steps as f64;
        let mut min = Vec3::splat(f64::MAX);
        let mut max = Vec3::splat(f64::MIN);
        for _ in 0..steps {
            BorisPusher.push(&mut p, &field, &sp, dt);
            min = min.min(p.position);
            max = max.max(p.position);
        }
        let diameter = 0.5 * ((max.x - min.x) + (max.y - min.y));
        assert!(
            (diameter - 2.0 * r_expect).abs() / (2.0 * r_expect) < 1e-2,
            "diameter {diameter}, expected {}",
            2.0 * r_expect
        );
    }

    #[test]
    fn exb_drift_velocity() {
        // E ⊥ B with E < B: guiding centre drifts at v = c·E×B/B².
        let sp = electron();
        let b = 1.0e4;
        let e = 1.0e2; // E/B = 0.01 ⇒ v_drift = 0.01c
        let field = EB::new(Vec3::new(e, 0.0, 0.0), Vec3::new(0.0, 0.0, b));
        let mut p = Particle::at_rest(Vec3::zero(), 1.0, EL);
        let period = 2.0 * std::f64::consts::PI / omega_c(b);
        let steps_per_period = 400;
        let periods = 50;
        let dt = period / steps_per_period as f64;
        for _ in 0..(steps_per_period * periods) {
            BorisPusher.push(&mut p, &field, &sp, dt);
        }
        let t_total = period * periods as f64;
        let v_drift = p.position.y / t_total; // E×B = (E,0,0)×(0,0,B) = (0,−EB,0); q<0 flips
        let expect = LIGHT_VELOCITY * e / b;
        assert!(
            (v_drift.abs() - expect).abs() / expect < 2e-2,
            "v_drift = {v_drift}, expected ±{expect}"
        );
        // Drift is along ±y, no secular x or z motion.
        assert!(p.position.z.abs() < 1e-6 * p.position.y.abs() + 1e-12);
    }

    #[test]
    fn gamma_cache_is_consistent_after_push() {
        let sp = electron();
        let field = EB::new(Vec3::new(1e-2, 2e-2, -3e-2), Vec3::new(4e2, -5e2, 6e2));
        let mut p = Particle::at_rest(Vec3::zero(), 1.0, EL);
        for _ in 0..10 {
            BorisPusher.push(&mut p, &field, &sp, 1e-13);
            let expect = pic_particles::particle::lorentz_gamma(p.momentum, sp.mass);
            assert!((p.gamma - expect).abs() / expect < 1e-14);
        }
    }

    #[test]
    fn second_order_convergence() {
        // Halving dt must reduce the end-point error ~4× (global order 2).
        let sp = electron();
        let field = EB::new(Vec3::new(1e-2, 0.0, 0.0), Vec3::new(0.0, 0.0, 2e3));
        let t_end = 4.0 * std::f64::consts::PI / omega_c(2e3);

        let run = |steps: usize| -> Vec3<f64> {
            let mut p = Particle::new(
                Vec3::zero(),
                Vec3::new(0.0, 1e-2 * ELECTRON_MASS * LIGHT_VELOCITY, 0.0),
                1.0,
                EL,
                sp.mass,
            );
            let dt = t_end / steps as f64;
            for _ in 0..steps {
                BorisPusher.push(&mut p, &field, &sp, dt);
            }
            p.position
        };

        let coarse = run(400);
        let medium = run(800);
        let fine = run(12800); // reference
        let e1 = (coarse - fine).norm();
        let e2 = (medium - fine).norm();
        let ratio = e1 / e2;
        assert!(
            (3.0..5.5).contains(&ratio),
            "convergence ratio {ratio} (e1={e1:.3e}, e2={e2:.3e})"
        );
    }

    #[test]
    fn f32_and_f64_agree_for_short_runs() {
        let sp64 = Species::<f64>::electron();
        let sp32 = Species::<f32>::electron();
        let field64 = EB::new(Vec3::new(1e-2, 0.0, 0.0), Vec3::new(0.0, 0.0, 1e3));
        let field32 = EB::new(Vec3::new(1e-2f32, 0.0, 0.0), Vec3::new(0.0, 0.0, 1e3));
        let mut p64 = Particle::<f64>::at_rest(Vec3::zero(), 1.0, EL);
        let mut p32 = Particle::<f32>::at_rest(Vec3::zero(), 1.0, EL);
        for _ in 0..100 {
            BorisPusher.push(&mut p64, &field64, &sp64, 1e-13);
            BorisPusher.push(&mut p32, &field32, &sp32, 1e-13);
        }
        let rel = (p64.momentum.norm() - p32.momentum.to_f64().norm()).abs() / p64.momentum.norm();
        assert!(rel < 1e-4, "precision divergence {rel}");
    }

    proptest! {
        #[test]
        fn rotation_preserves_u_for_any_field(
            ux in -10.0f64..10.0, uy in -10.0f64..10.0, uz in -10.0f64..10.0,
            bx in -1e5f64..1e5, by in -1e5f64..1e5, bz in -1e5f64..1e5,
            dt_exp in -16.0f64..-12.0,
        ) {
            let u = Vec3::new(ux, uy, uz);
            let field = EB::new(Vec3::zero(), Vec3::new(bx, by, bz));
            let sp = electron();
            let eps = half_kick_coef(&sp, 10f64.powf(dt_exp));
            let (u_new, _) = BorisPusher::rotate_kick(u, &field, eps);
            let rel = (u_new.norm() - u.norm()).abs() / (u.norm() + 1e-30);
            prop_assert!(rel < 1e-12, "|u| changed by {rel}");
        }

        #[test]
        fn gamma_never_below_one(
            ux in -100.0f64..100.0, uy in -100.0f64..100.0, uz in -100.0f64..100.0,
            ex in -1e3f64..1e3, ey in -1e3f64..1e3, ez in -1e3f64..1e3,
            bx in -1e5f64..1e5, by in -1e5f64..1e5, bz in -1e5f64..1e5,
        ) {
            let sp = electron();
            let field = EB::new(Vec3::new(ex, ey, ez), Vec3::new(bx, by, bz));
            let mut p = Particle::new(
                Vec3::zero(),
                crate::pusher::momentum_from_u(Vec3::new(ux, uy, uz), sp.mass),
                1.0, EL, sp.mass,
            );
            BorisPusher.push(&mut p, &field, &sp, 1e-14);
            prop_assert!(p.gamma >= 1.0);
            prop_assert!(p.momentum.is_finite());
            prop_assert!(p.position.is_finite());
        }

        #[test]
        fn zero_field_is_free_streaming(
            ux in -5.0f64..5.0, uy in -5.0f64..5.0, uz in -5.0f64..5.0,
        ) {
            let sp = electron();
            let u = Vec3::new(ux, uy, uz);
            let p0 = crate::pusher::momentum_from_u(u, sp.mass);
            let mut p = Particle::new(Vec3::zero(), p0, 1.0, EL, sp.mass);
            let dt = 1e-13;
            for _ in 0..7 {
                BorisPusher.push(&mut p, &EB::zero(), &sp, dt);
            }
            // u = p/(mc) roundtrips through a recip() on every step, so
            // allow a few ulps of accumulated drift over the 7 steps.
            prop_assert!((p.momentum - p0).norm() <= 32.0 * f64::EPSILON * p0.norm());
            let v = p0 / (p.gamma * sp.mass);
            let expect = v * (7.0 * dt);
            prop_assert!((p.position - expect).norm() <= 1e-12 * expect.norm());
        }
    }
}

//! Trajectory recording for selected particles.
//!
//! The paper's physics study (§5.2) characterizes *ensemble* escape rates;
//! understanding individual dynamics (gyration, ponderomotive drift,
//! trapping) needs per-particle trajectories. This recorder samples chosen
//! particles every N steps without touching the hot loop.

use pic_math::{Real, Vec3};
use pic_particles::ParticleAccess;

/// One trajectory sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectorySample<R> {
    /// Simulation time, s.
    pub time: f64,
    /// Particle position, cm.
    pub position: Vec3<R>,
    /// Particle momentum, g·cm/s.
    pub momentum: Vec3<R>,
    /// Lorentz factor.
    pub gamma: R,
}

/// Records the state of selected particles at a fixed step cadence.
///
/// # Example
///
/// ```
/// use pic_boris::trajectory::TrajectoryRecorder;
/// use pic_particles::{AosEnsemble, Particle, ParticleStore};
///
/// let ens = AosEnsemble::<f64>::from_particles(
///     (0..10).map(|_| Particle::default()));
/// let mut rec = TrajectoryRecorder::new(vec![0, 5], 2);
/// for step in 0..6 {
///     rec.record(&ens, step as f64 * 1.0e-15);
/// }
/// assert_eq!(rec.samples(0).len(), 3); // steps 0, 2, 4
/// ```
#[derive(Clone, Debug)]
pub struct TrajectoryRecorder<R> {
    indices: Vec<usize>,
    every: usize,
    calls: usize,
    tracks: Vec<Vec<TrajectorySample<R>>>,
}

impl<R: Real> TrajectoryRecorder<R> {
    /// Creates a recorder tracking the given particle indices, sampling
    /// every `every`-th call to [`record`](Self::record).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(indices: Vec<usize>, every: usize) -> TrajectoryRecorder<R> {
        assert!(every > 0, "TrajectoryRecorder: zero cadence");
        let tracks = vec![Vec::new(); indices.len()];
        TrajectoryRecorder {
            indices,
            every,
            calls: 0,
            tracks,
        }
    }

    /// Number of tracked particles.
    pub fn tracked(&self) -> usize {
        self.indices.len()
    }

    /// Samples the store if this call falls on the cadence. Call once per
    /// simulation step.
    ///
    /// # Panics
    ///
    /// Panics if a tracked index is out of range for `store`.
    pub fn record<A: ParticleAccess<R>>(&mut self, store: &A, time: f64) {
        if self.calls.is_multiple_of(self.every) {
            for (t, &i) in self.indices.iter().enumerate() {
                let p = store.get(i);
                self.tracks[t].push(TrajectorySample {
                    time,
                    position: p.position,
                    momentum: p.momentum,
                    gamma: p.gamma,
                });
            }
        }
        self.calls += 1;
    }

    /// The recorded track of the `t`-th tracked particle.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tracked()`.
    pub fn samples(&self, t: usize) -> &[TrajectorySample<R>] {
        &self.tracks[t]
    }

    /// Total path length of track `t` (sum of segment lengths), cm.
    pub fn path_length(&self, t: usize) -> f64 {
        self.tracks[t]
            .windows(2)
            .map(|w| (w[1].position.to_f64() - w[0].position.to_f64()).norm())
            .sum()
    }

    /// Largest distance of track `t` from its first sample, cm.
    pub fn max_excursion(&self, t: usize) -> f64 {
        let Some(first) = self.tracks[t].first() else {
            return 0.0;
        };
        let origin = first.position.to_f64();
        self.tracks[t]
            .iter()
            .map(|s| (s.position.to_f64() - origin).norm())
            .fold(0.0, f64::max)
    }

    /// Peak Lorentz factor seen on track `t` (1 for an empty track).
    pub fn max_gamma(&self, t: usize) -> f64 {
        self.tracks[t]
            .iter()
            .map(|s| s.gamma.to_f64())
            .fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boris::BorisPusher;
    use crate::pusher::Pusher;
    use pic_fields::EB;
    use pic_math::constants::{ELECTRON_MASS, ELEMENTARY_CHARGE, LIGHT_VELOCITY};
    use pic_particles::{AosEnsemble, Particle, ParticleStore, Species, SpeciesId};

    #[test]
    fn cadence_and_counts() {
        let ens = AosEnsemble::<f64>::from_particles((0..5).map(|_| Particle::default()));
        let mut rec = TrajectoryRecorder::new(vec![1, 3], 3);
        for step in 0..10 {
            rec.record(&ens, step as f64);
        }
        assert_eq!(rec.tracked(), 2);
        // Steps 0, 3, 6, 9.
        assert_eq!(rec.samples(0).len(), 4);
        assert_eq!(rec.samples(1).len(), 4);
        assert_eq!(rec.samples(0)[2].time, 6.0);
    }

    #[test]
    fn gyration_path_length_matches_circumference() {
        let sp = Species::<f64>::electron();
        let b = 1.0e3;
        let field = EB::new(pic_math::Vec3::zero(), pic_math::Vec3::new(0.0, 0.0, b));
        let p_mag = 1e-2 * ELECTRON_MASS * LIGHT_VELOCITY;
        let mut ens = AosEnsemble::<f64>::from_particles([Particle::new(
            pic_math::Vec3::zero(),
            pic_math::Vec3::new(p_mag, 0.0, 0.0),
            1.0,
            SpeciesId(0),
            sp.mass,
        )]);
        let gamma = ens.get(0).gamma;
        let omega_c = ELEMENTARY_CHARGE * b / (ELECTRON_MASS * LIGHT_VELOCITY * gamma);
        let period = 2.0 * std::f64::consts::PI / omega_c;
        let steps = 720;
        let dt = period / steps as f64;

        let mut rec = TrajectoryRecorder::new(vec![0], 1);
        for step in 0..steps {
            rec.record(&ens, step as f64 * dt);
            let mut p = ens.get(0);
            BorisPusher.push(&mut p, &field, &sp, dt);
            ens.set(0, &p);
        }
        // One full circle: path ≈ 2π r_L with r_L = p c/(eB).
        let r_l = p_mag * LIGHT_VELOCITY / (ELEMENTARY_CHARGE * b);
        let expect = 2.0 * std::f64::consts::PI * r_l;
        let got = rec.path_length(0);
        assert!(
            (got - expect).abs() / expect < 1e-2,
            "path {got} vs {expect}"
        );
        // Max excursion ≈ the diameter.
        let exc = rec.max_excursion(0);
        assert!(
            (exc - 2.0 * r_l).abs() / (2.0 * r_l) < 2e-2,
            "excursion {exc}"
        );
        assert!(rec.max_gamma(0) >= 1.0);
    }

    #[test]
    fn empty_track_edge_cases() {
        let rec = TrajectoryRecorder::<f64>::new(vec![0], 1);
        assert_eq!(rec.path_length(0), 0.0);
        assert_eq!(rec.max_excursion(0), 0.0);
        assert_eq!(rec.max_gamma(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero cadence")]
    fn zero_cadence_panics() {
        let _ = TrajectoryRecorder::<f64>::new(vec![0], 0);
    }
}

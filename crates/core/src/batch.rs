//! Blocked (vector-width) Boris kernel.
//!
//! The paper's C++ loop is auto-vectorized with AVX-512 (8 doubles / 16
//! floats per register). This module mirrors that structure explicitly: it
//! gathers particles into a fixed-width block of per-component arrays,
//! runs the Boris update as straight-line per-lane loops the compiler can
//! vectorize, and scatters the results back. The arithmetic per lane is
//! identical (same order of operations) to [`BorisPusher`], so blocked and
//! scalar runs produce bitwise-identical trajectories — asserted in tests.

use crate::boris::BorisPusher;
use crate::kernel::FieldSource;
use crate::pusher::{half_kick_coef, u_from_momentum, Pusher};
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::{Real, Vec3};
use pic_particles::{ParticleAccess, SpeciesTable};

/// Vector width of the blocked kernel (AVX-512 double lanes).
pub const LANES: usize = 8;

/// Blocked Boris pusher over any [`ParticleAccess`] collection.
///
/// Unlike [`crate::PushKernel`] this is not a per-particle
/// [`pic_particles::ParticleKernel`]; it owns the whole sweep so it can
/// process `LANES` particles at a time.
#[derive(Clone, Copy, Debug)]
pub struct BatchBorisKernel<'a, R, F> {
    source: &'a F,
    table: &'a SpeciesTable<R>,
    dt: R,
    time: R,
}

impl<'a, R: Real, F: FieldSource<R>> BatchBorisKernel<'a, R, F> {
    /// Creates a blocked kernel.
    pub fn new(source: &'a F, table: &'a SpeciesTable<R>, dt: R, time: R) -> Self {
        BatchBorisKernel {
            source,
            table,
            dt,
            time,
        }
    }

    /// Advances every particle in `store` by one step.
    ///
    /// When the store is SoA-backed this delegates to the zero-gather
    /// direct-slice path of [`crate::SoaBorisKernel`] — the gather/
    /// scatter round-trip below only pays off when the layout forces it.
    /// Both paths produce identical trajectories (within the documented
    /// scatter rounding of the gathered path; the fast path is bitwise-
    /// equal to the scalar reference).
    pub fn sweep<A: ParticleAccess<R>>(&self, store: &mut A) {
        if let Some(mut lanes) = store.soa_lanes_mut() {
            let fast =
                crate::soa_boris::SoaBorisKernel::new(self.source, self.table, self.dt, self.time);
            fast.run_lanes(&mut lanes);
            return;
        }
        self.sweep_gathered(store);
    }

    /// The original gather → compute → scatter sweep, kept callable so
    /// benchmarks can measure the round-trip cost against the fast path.
    pub fn sweep_gathered<A: ParticleAccess<R>>(&self, store: &mut A) {
        let n = store.len();
        let base = store.base_index();
        let mut i = 0;
        while i + LANES <= n {
            self.block(store, base, i);
            i += LANES;
        }
        // Scalar tail, same arithmetic.
        let mut tail = TailKernel { inner: self };
        while i < n {
            let mut v = store.view_mut(i);
            pic_particles::ParticleKernel::apply(&mut tail, base + i, &mut v);
            i += 1;
        }
    }

    #[inline]
    fn block<A: ParticleAccess<R>>(&self, store: &mut A, base: usize, start: usize) {
        // Gather.
        let mut ux = [R::ZERO; LANES];
        let mut uy = [R::ZERO; LANES];
        let mut uz = [R::ZERO; LANES];
        let mut ex = [R::ZERO; LANES];
        let mut ey = [R::ZERO; LANES];
        let mut ez = [R::ZERO; LANES];
        let mut bx = [R::ZERO; LANES];
        let mut by = [R::ZERO; LANES];
        let mut bz = [R::ZERO; LANES];
        let mut eps = [R::ZERO; LANES];
        let mut inv_mc = [R::ZERO; LANES];
        for l in 0..LANES {
            let p = store.get(start + l);
            let species = self.table.get(p.species);
            let field = self.source.field(base + start + l, p.position, self.time);
            let u = u_from_momentum(p.momentum, species.mass);
            ux[l] = u.x;
            uy[l] = u.y;
            uz[l] = u.z;
            ex[l] = field.e.x;
            ey[l] = field.e.y;
            ez[l] = field.e.z;
            bx[l] = field.b.x;
            by[l] = field.b.y;
            bz[l] = field.b.z;
            eps[l] = half_kick_coef(species, self.dt);
            inv_mc[l] = (species.mass * R::from_f64(LIGHT_VELOCITY)).recip();
        }

        // Compute: per-lane straight-line Boris, vectorizable.
        let mut gx = [R::ZERO; LANES];
        let mut gamma = [R::ZERO; LANES];
        let mut gy = [R::ZERO; LANES];
        let mut gz = [R::ZERO; LANES];
        for l in 0..LANES {
            // Half electric kick: u⁻ = u + ε·E (same op order as
            // BorisPusher::rotate_kick → Vec3::mul_add).
            let umx = ex[l].mul_add(eps[l], ux[l]);
            let umy = ey[l].mul_add(eps[l], uy[l]);
            let umz = ez[l].mul_add(eps[l], uz[l]);
            let gamma_n = (R::ONE + (umx * umx + umy * umy + umz * umz)).sqrt();
            let coef = eps[l] / gamma_n;
            let tx = bx[l] * coef;
            let ty = by[l] * coef;
            let tz = bz[l] * coef;
            let t2 = tx * tx + ty * ty + tz * tz;
            let sc = R::TWO / (R::ONE + t2);
            let sx = tx * sc;
            let sy = ty * sc;
            let sz = tz * sc;
            // u' = u⁻ + u⁻ × t
            let upx = umx + (umy * tz - umz * ty);
            let upy = umy + (umz * tx - umx * tz);
            let upz = umz + (umx * ty - umy * tx);
            // u⁺ = u⁻ + u' × s
            let uplx = umx + (upy * sz - upz * sy);
            let uply = umy + (upz * sx - upx * sz);
            let uplz = umz + (upx * sy - upy * sx);
            // Second half kick.
            gx[l] = ex[l].mul_add(eps[l], uplx);
            gy[l] = ey[l].mul_add(eps[l], uply);
            gz[l] = ez[l].mul_add(eps[l], uplz);
            gamma[l] = (R::ONE + (gx[l] * gx[l] + gy[l] * gy[l] + gz[l] * gz[l])).sqrt();
        }

        // Scatter: momentum, γ, leapfrog position.
        for l in 0..LANES {
            let mut p = store.get(start + l);
            let u_new = Vec3::new(gx[l], gy[l], gz[l]);
            let mc = inv_mc[l].recip();
            let p_new = u_new * mc;
            let vel = p_new / (gamma[l] * (mc * R::from_f64(1.0 / LIGHT_VELOCITY)));
            p.momentum = p_new;
            p.gamma = gamma[l];
            p.position += vel * self.dt;
            store.set(start + l, &p);
        }
    }
}

/// Lets the parallel runtime drive the *gathered* path chunk by chunk —
/// the benchmark's gather/scatter baseline. Single-particle applications
/// use the scalar reference arithmetic, same as the sweep's tail.
impl<R: Real, F: FieldSource<R>> pic_particles::ParticleKernel<R> for BatchBorisKernel<'_, R, F> {
    #[inline(always)]
    fn apply<V: pic_particles::ParticleView<R>>(&mut self, index: usize, view: &mut V) {
        let field = self.source.field(index, view.position(), self.time);
        let species = self.table.get(view.species());
        BorisPusher.push(view, &field, species, self.dt);
    }

    fn apply_chunk<A: ParticleAccess<R>>(&mut self, chunk: &mut A) {
        self.sweep_gathered(chunk);
    }
}

/// Scalar tail: delegates to the reference [`BorisPusher`].
struct TailKernel<'a, 'b, R, F> {
    inner: &'b BatchBorisKernel<'a, R, F>,
}

impl<R: Real, F: FieldSource<R>> pic_particles::ParticleKernel<R> for TailKernel<'_, '_, R, F> {
    #[inline(always)]
    fn apply<V: pic_particles::ParticleView<R>>(&mut self, index: usize, view: &mut V) {
        let field = self
            .inner
            .source
            .field(index, view.position(), self.inner.time);
        let species = self.inner.table.get(view.species());
        BorisPusher.push(view, &field, species, self.inner.dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AnalyticalSource, PushKernel};
    use pic_fields::DipoleStandingWave;
    use pic_math::constants::{BENCH_OMEGA, BENCH_POWER, BENCH_WAVELENGTH};
    use pic_particles::init::{fill_sphere_at_rest, SphereDist};
    use pic_particles::{AosEnsemble, ParticleStore, SoaEnsemble};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ensemble<S: ParticleStore<f64>>(n: usize) -> S {
        let mut s = S::default();
        fill_sphere_at_rest(
            &mut s,
            n,
            &SphereDist {
                center: Vec3::zero(),
                radius: 0.6 * BENCH_WAVELENGTH,
            },
            1.0,
            SpeciesTable::<f64>::ELECTRON,
            &mut StdRng::seed_from_u64(5),
        );
        s
    }

    fn compare_batch_vs_scalar<S: ParticleStore<f64>>(n: usize, tol: f64) {
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let source = AnalyticalSource::new(&wave);
        let dt = 0.005 * 2.0 * std::f64::consts::PI / BENCH_OMEGA;

        let mut scalar: S = ensemble(n);
        let mut blocked: S = ensemble(n);

        let mut k = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
        for step in 0..10 {
            scalar.for_each_mut(&mut k);
            k.advance_time();

            let time = dt * step as f64;
            let bk = BatchBorisKernel::new(&source, &table, dt, time);
            bk.sweep(&mut blocked);
        }
        for i in 0..scalar.len() {
            let a = scalar.get(i);
            let b = blocked.get(i);
            let scale = a.momentum.norm().max(1e-30);
            assert!(
                (a.momentum - b.momentum).norm() / scale <= tol,
                "momentum diverged at particle {i}: {:?} vs {:?}",
                a.momentum,
                b.momentum
            );
            let pscale = a.position.norm().max(1e-30);
            assert!((a.position - b.position).norm() / pscale <= tol);
        }
    }

    #[test]
    fn batch_matches_scalar_on_aos() {
        // 37 = 4 full blocks + a 5-particle scalar tail.
        compare_batch_vs_scalar::<AosEnsemble<f64>>(37, 1e-12);
    }

    #[test]
    fn batch_matches_scalar_on_soa() {
        compare_batch_vs_scalar::<SoaEnsemble<f64>>(64, 1e-12);
    }

    #[test]
    fn tail_only_ensembles_work() {
        compare_batch_vs_scalar::<AosEnsemble<f64>>(3, 1e-12);
    }

    #[test]
    fn empty_ensemble_is_fine() {
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let source = AnalyticalSource::new(&wave);
        let bk = BatchBorisKernel::new(&source, &table, 1e-15, 0.0);
        let mut ens = AosEnsemble::<f64>::new();
        bk.sweep(&mut ens);
        assert!(ens.is_empty());
    }

    #[test]
    fn soa_sweep_delegates_to_fast_path_and_matches_gathered_aos() {
        // Regression for the layout split: `sweep` on an SoA store now takes
        // the direct-slice fast path while an AoS store keeps the gathered
        // path. Both must agree on the same initial conditions to within the
        // documented scatter rounding of the gathered path.
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let source = AnalyticalSource::new(&wave);
        let dt = 0.005 * 2.0 * std::f64::consts::PI / BENCH_OMEGA;

        let mut aos: AosEnsemble<f64> = ensemble(37);
        let mut soa: SoaEnsemble<f64> = ensemble(37);
        for step in 0..10 {
            let time = dt * step as f64;
            let bk = BatchBorisKernel::new(&source, &table, dt, time);
            bk.sweep(&mut aos);
            bk.sweep(&mut soa);
        }
        for i in 0..aos.len() {
            let a = aos.get(i);
            let b = soa.get(i);
            let scale = a.momentum.norm().max(1e-30);
            assert!(
                (a.momentum - b.momentum).norm() / scale <= 1e-12,
                "AoS/SoA sweep diverged at particle {i}"
            );
            let pscale = a.position.norm().max(1e-30);
            assert!((a.position - b.position).norm() / pscale <= 1e-12);
        }
    }

    #[test]
    fn gathered_sweep_still_matches_scalar_on_soa() {
        // The gathered path stays available for benchmarking; it must keep
        // matching the scalar reference on SoA stores too.
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
        let source = AnalyticalSource::new(&wave);
        let dt = 0.005 * 2.0 * std::f64::consts::PI / BENCH_OMEGA;

        let mut scalar: SoaEnsemble<f64> = ensemble(21);
        let mut gathered: SoaEnsemble<f64> = ensemble(21);
        let mut k = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
        for step in 0..10 {
            scalar.for_each_mut(&mut k);
            k.advance_time();
            let bk = BatchBorisKernel::new(&source, &table, dt, dt * step as f64);
            bk.sweep_gathered(&mut gathered);
        }
        for i in 0..scalar.len() {
            let a = scalar.get(i);
            let b = gathered.get(i);
            let scale = a.momentum.norm().max(1e-30);
            assert!((a.momentum - b.momentum).norm() / scale <= 1e-12);
        }
    }

    #[test]
    fn momentum_magnitude_preserved_in_pure_b() {
        let table = SpeciesTable::<f64>::with_standard_species();
        let field = pic_fields::UniformFields::<f64>::magnetic(Vec3::new(0.0, 0.0, 1e4));
        let source = AnalyticalSource::new(field);
        let mut ens: SoaEnsemble<f64> = ensemble(16);
        // Give them momenta.
        for i in 0..ens.len() {
            let mut p = ens.get(i);
            p.momentum = Vec3::new(1e-18 * (i + 1) as f64, 0.0, 2e-19);
            p.refresh_gamma(pic_particles::Species::<f64>::electron().mass);
            ens.set(i, &p);
        }
        let norms: Vec<f64> = (0..ens.len()).map(|i| ens.get(i).momentum.norm()).collect();
        let bk = BatchBorisKernel::new(&source, &table, 1e-12, 0.0);
        for _ in 0..25 {
            bk.sweep(&mut ens);
        }
        for (i, before) in norms.iter().enumerate() {
            let n = ens.get(i).momentum.norm();
            assert!((n - before).abs() / before < 1e-12);
        }
    }
}

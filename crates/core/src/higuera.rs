//! The Higuera–Cary (2017) pusher — the second alternative integrator from
//! the paper's Ref. \[11] (Ripperda et al. 2018).
//!
//! Structurally identical to Boris (half kick, rotation, half kick) but the
//! rotation uses the Lorentz factor of the *time-centred* momentum, making
//! the scheme volume-preserving and giving the correct E×B drift.

use crate::pusher::{
    advance_position, gamma_of_u, half_kick_coef, momentum_from_u, u_from_momentum, OpTally,
    Pusher, SHARED_TALLY,
};
use pic_fields::EB;
use pic_math::{Real, Vec3};
use pic_particles::{ParticleView, Species};

/// The Higuera–Cary integrator (Phys. Plasmas 24, 052104, 2017).
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct HigueraCaryPusher;

impl HigueraCaryPusher {
    /// Momentum update in dimensionless u = p/(mc) form, ε = qΔt/(2mc).
    #[inline(always)]
    pub fn kick<R: Real>(u_old: Vec3<R>, field: &EB<R>, eps: R) -> Vec3<R> {
        // Half electric kick.
        let u_minus = field.e.mul_add(eps, u_old);
        // Time-centred Lorentz factor (the HC modification).
        let tau = field.b * eps;
        let gamma_minus2 = R::ONE + u_minus.norm2();
        let tau2 = tau.norm2();
        let u_star = u_minus.dot(tau);
        let sigma = gamma_minus2 - tau2;
        let gamma_half = ((sigma
            + (sigma * sigma + R::from_f64(4.0) * (tau2 + u_star * u_star)).sqrt())
            * R::HALF)
            .sqrt();
        // Boris-style exact rotation with the centred γ.
        let t = tau / gamma_half;
        let s = t * (R::TWO / (R::ONE + t.norm2()));
        let u_prime = u_minus + u_minus.cross(t);
        let u_plus = u_minus + u_prime.cross(s);
        // Second half electric kick.
        field.e.mul_add(eps, u_plus)
    }
}

impl<R: Real> Pusher<R> for HigueraCaryPusher {
    #[inline]
    fn push<V: ParticleView<R>>(&self, view: &mut V, field: &EB<R>, species: &Species<R>, dt: R) {
        let eps = half_kick_coef(species, dt);
        let u_old = u_from_momentum(view.momentum(), species.mass);
        let u_new = Self::kick(u_old, field, eps);
        let gamma_new = gamma_of_u(u_new);
        let p_new = momentum_from_u(u_new, species.mass);
        view.set_momentum(p_new);
        view.set_gamma(gamma_new);
        advance_position(view, p_new, gamma_new, species.mass, dt);
    }

    fn name(&self) -> &'static str {
        "Higuera-Cary"
    }

    fn tally(&self) -> OpTally {
        // kick: Boris's structure with the centred-γ quartic replacing the
        // plain γⁿ: kicks+rotations as Boris (24m+24a), τ (3m),
        // γ′²/τ²/u·τ/σ (9m+7a), quartic γ (4m+3a+2√), t (÷+3m),
        // s (6m+3a+÷).
        SHARED_TALLY.combine(OpTally {
            adds: 32,
            muls: 43,
            divs: 2,
            sqrts: 2,
            ..OpTally::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boris::BorisPusher;
    use pic_particles::{Particle, SpeciesId, SpeciesTable};
    use proptest::prelude::*;

    const EL: SpeciesId = SpeciesTable::<f64>::ELECTRON;

    #[test]
    fn pure_electric_field_gives_exact_impulse() {
        let sp = Species::<f64>::electron();
        let field = EB::new(Vec3::new(0.0, 0.0, 3e-2), Vec3::zero());
        let dt = 1e-13;
        let mut p = Particle::at_rest(Vec3::zero(), 1.0, EL);
        for _ in 0..25 {
            HigueraCaryPusher.push(&mut p, &field, &sp, dt);
        }
        let expect = sp.charge * 3e-2 * dt * 25.0;
        assert!((p.momentum.z - expect).abs() / expect.abs() < 1e-12);
    }

    #[test]
    fn magnetic_rotation_preserves_momentum_magnitude() {
        let sp = Species::<f64>::electron();
        let field = EB::new(Vec3::zero(), Vec3::new(3e3, -1e3, 2e3));
        let u0 = Vec3::new(0.4, 1.1, -0.6);
        let mut u = u0;
        for _ in 0..200 {
            u = HigueraCaryPusher::kick(u, &field, half_kick_coef(&sp, 5e-13));
        }
        assert!((u.norm() - u0.norm()).abs() / u0.norm() < 1e-12);
    }

    #[test]
    fn exb_drift_is_exact_for_large_steps() {
        let sp = Species::<f64>::electron();
        let b = 1.0e4;
        let e = 1.0e2;
        let field = EB::new(Vec3::new(e, 0.0, 0.0), Vec3::new(0.0, 0.0, b));
        let beta = e / b;
        let gamma = 1.0 / (1.0 - beta * beta).sqrt();
        let u_drift = Vec3::new(0.0, -gamma * beta, 0.0);
        let dt = 2e-11; // ω_c·dt ≈ 3.5
        let mut u = u_drift;
        for _ in 0..20 {
            u = HigueraCaryPusher::kick(u, &field, half_kick_coef(&sp, dt));
        }
        assert!(
            (u - u_drift).norm() / u_drift.norm() < 1e-9,
            "HC left the drift solution: {u}"
        );
    }

    #[test]
    fn agrees_with_boris_in_the_small_step_limit() {
        let sp = Species::<f64>::electron();
        let field = EB::new(Vec3::new(2e-3, 1e-3, -4e-3), Vec3::new(-2e3, 1e3, 3e3));
        let u0 = Vec3::new(-0.2, 0.5, 0.9);
        let dt = 1e-17;
        let eps = half_kick_coef(&sp, dt);
        let u_hc = HigueraCaryPusher::kick(u0, &field, eps);
        let (u_boris, _) = BorisPusher::rotate_kick(u0, &field, eps);
        let step = (u_hc - u0).norm();
        assert!((u_hc - u_boris).norm() < 1e-6 * step);
    }

    proptest! {
        #[test]
        fn gamma_finite_and_at_least_one(
            ux in -20.0f64..20.0, uy in -20.0f64..20.0, uz in -20.0f64..20.0,
            ey in -1e3f64..1e3, bx in -1e5f64..1e5,
        ) {
            let sp = Species::<f64>::electron();
            let field = EB::new(Vec3::new(0.0, ey, 0.0), Vec3::new(bx, 0.0, 0.0));
            let u = HigueraCaryPusher::kick(
                Vec3::new(ux, uy, uz), &field, half_kick_coef(&sp, 1e-13));
            prop_assert!(u.is_finite());
            prop_assert!(gamma_of_u(u) >= 1.0);
        }

        #[test]
        fn pure_b_field_norm_preserved_any_step(
            ux in -5.0f64..5.0, uy in -5.0f64..5.0,
            bz in 1e2f64..1e5, dt_exp in -15.0f64..-11.0,
        ) {
            let sp = Species::<f64>::electron();
            let field = EB::new(Vec3::zero(), Vec3::new(0.0, 0.0, bz));
            let u0 = Vec3::new(ux, uy, 0.3);
            let u = HigueraCaryPusher::kick(u0, &field, half_kick_coef(&sp, 10f64.powf(dt_exp)));
            prop_assert!((u.norm() - u0.norm()).abs() / u0.norm() < 1e-12);
        }
    }
}

//! Ensemble diagnostics: energies, momenta, escape statistics.

use pic_math::{Real, Vec3};
use pic_particles::{ParticleAccess, SpeciesTable};

/// Total kinetic energy ∑ wᵢ(γᵢ − 1)mᵢc², erg.
pub fn kinetic_energy<R: Real, A: ParticleAccess<R>>(store: &A, table: &SpeciesTable<R>) -> f64 {
    let mut total = 0.0;
    for i in 0..store.len() {
        let p = store.get(i);
        let sp = table.get(p.species);
        total += p.weight.to_f64() * (p.gamma.to_f64() - 1.0) * sp.rest_energy().to_f64();
    }
    total
}

/// Weighted mean Lorentz factor (1 for an empty ensemble).
pub fn mean_gamma<R: Real, A: ParticleAccess<R>>(store: &A) -> f64 {
    if store.is_empty() {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut wsum = 0.0;
    for i in 0..store.len() {
        let p = store.get(i);
        sum += p.weight.to_f64() * p.gamma.to_f64();
        wsum += p.weight.to_f64();
    }
    sum / wsum
}

/// Total (weighted) momentum vector, g·cm/s.
pub fn total_momentum<R: Real, A: ParticleAccess<R>>(store: &A) -> Vec3<f64> {
    let mut total = Vec3::zero();
    for i in 0..store.len() {
        let p = store.get(i);
        total += p.momentum.to_f64() * p.weight.to_f64();
    }
    total
}

/// Fraction of particles inside a sphere — the escape-rate diagnostic of
/// the paper's physical study (§5.2: "the rate of particle escape from the
/// focal region").
pub fn fraction_inside_sphere<R: Real, A: ParticleAccess<R>>(
    store: &A,
    center: Vec3<f64>,
    radius: f64,
) -> f64 {
    if store.is_empty() {
        return 0.0;
    }
    let r2 = radius * radius;
    let inside = (0..store.len())
        .filter(|&i| (store.get(i).position.to_f64() - center).norm2() <= r2)
        .count();
    // lint: allow(precision-pollution): integer-count ratio for a
    // diagnostic, not part of the Real-typed push arithmetic.
    inside as f64 / store.len() as f64
}

/// Largest |γ| in the ensemble (1 for an empty ensemble).
pub fn max_gamma<R: Real, A: ParticleAccess<R>>(store: &A) -> f64 {
    (0..store.len())
        .map(|i| store.get(i).gamma.to_f64())
        .fold(1.0, f64::max)
}

/// A weighted histogram over equal-width bins.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub min: f64,
    /// Upper edge of the last bin.
    pub max: f64,
    /// Per-bin accumulated weight; out-of-range samples clamp into the
    /// edge bins.
    pub counts: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram of `(value, weight)` samples.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `max <= min`.
    pub fn build<I: IntoIterator<Item = (f64, f64)>>(
        samples: I,
        bins: usize,
        min: f64,
        max: f64,
    ) -> Histogram {
        assert!(bins > 0, "Histogram: zero bins");
        assert!(max > min, "Histogram: empty range");
        let mut counts = vec![0.0; bins];
        let scale = bins as f64 / (max - min);
        for (v, w) in samples {
            let bin = (((v - min) * scale).floor() as isize).clamp(0, bins as isize - 1);
            counts[bin as usize] += w;
        }
        Histogram { min, max, counts }
    }

    /// Total accumulated weight.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Centre of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let width = (self.max - self.min) / self.counts.len() as f64;
        self.min + (i as f64 + 0.5) * width
    }

    /// Index of the heaviest bin (0 when empty).
    pub fn peak_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            // lint: allow(unwrap-in-lib): counts are built from finite
            // additions only, so partial_cmp cannot see NaN.
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite counts"))
            .map_or(0, |(i, _)| i)
    }
}

/// Weighted γ spectrum of the ensemble — the standard energy diagnostic of
/// laser-plasma studies (γ ↦ kinetic energy via (γ−1)mc²).
pub fn gamma_spectrum<R: Real, A: ParticleAccess<R>>(
    store: &A,
    bins: usize,
    gamma_max: f64,
) -> Histogram {
    Histogram::build(
        (0..store.len()).map(|i| {
            let p = store.get(i);
            (p.gamma.to_f64(), p.weight.to_f64())
        }),
        bins,
        1.0,
        gamma_max,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_math::constants::{ELECTRON_MASS, ELECTRON_REST_ENERGY, LIGHT_VELOCITY};
    use pic_particles::{AosEnsemble, Particle, ParticleStore, SpeciesTable};

    const EL: pic_particles::SpeciesId = SpeciesTable::<f64>::ELECTRON;

    fn two_particles() -> (AosEnsemble<f64>, SpeciesTable<f64>) {
        let table = SpeciesTable::with_standard_species();
        let mut ens = AosEnsemble::new();
        ens.push(Particle::at_rest(Vec3::zero(), 2.0, EL));
        let mc = ELECTRON_MASS * LIGHT_VELOCITY;
        ens.push(Particle::new(
            Vec3::splat(10.0),
            Vec3::new(mc, 0.0, 0.0), // γ = √2
            1.0,
            EL,
            ELECTRON_MASS,
        ));
        (ens, table)
    }

    #[test]
    fn kinetic_energy_sums_weighted() {
        let (ens, table) = two_particles();
        let expect = 1.0 * (2.0f64.sqrt() - 1.0) * ELECTRON_REST_ENERGY;
        assert!((kinetic_energy(&ens, &table) - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn mean_gamma_weighted() {
        let (ens, _) = two_particles();
        let expect = (2.0 * 1.0 + 1.0 * 2.0f64.sqrt()) / 3.0;
        assert!((mean_gamma(&ens) - expect).abs() < 1e-12);
        assert_eq!(mean_gamma(&AosEnsemble::<f64>::new()), 1.0);
    }

    #[test]
    fn total_momentum_weighted() {
        let (ens, _) = two_particles();
        let mc = ELECTRON_MASS * LIGHT_VELOCITY;
        let total = total_momentum(&ens);
        assert!((total.x - mc).abs() / mc < 1e-12);
        assert_eq!(total.y, 0.0);
    }

    #[test]
    fn sphere_fraction() {
        let (ens, _) = two_particles();
        assert_eq!(fraction_inside_sphere(&ens, Vec3::zero(), 1.0), 0.5);
        assert_eq!(fraction_inside_sphere(&ens, Vec3::zero(), 100.0), 1.0);
        assert_eq!(
            fraction_inside_sphere(&AosEnsemble::<f64>::new(), Vec3::zero(), 1.0),
            0.0
        );
    }

    #[test]
    fn max_gamma_finds_fastest() {
        let (ens, _) = two_particles();
        assert!((max_gamma(&ens) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(max_gamma(&AosEnsemble::<f64>::new()), 1.0);
    }

    #[test]
    fn histogram_conserves_weight_and_clamps() {
        let h = Histogram::build(
            [(0.5, 1.0), (1.5, 2.0), (9.0, 4.0), (-3.0, 0.5)],
            4,
            0.0,
            2.0,
        );
        // Bin width 0.5: 0.5→bin 1, 1.5→bin 3; 9.0 clamps into the last
        // bin, −3.0 into the first.
        assert_eq!(h.total(), 7.5);
        assert_eq!(h.counts[0], 0.5);
        assert_eq!(h.counts[1], 1.0);
        assert_eq!(h.counts[2], 0.0);
        assert_eq!(h.counts[3], 6.0);
        assert_eq!(h.peak_bin(), 3);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn gamma_spectrum_of_monoenergetic_ensemble_peaks_once() {
        let (ens, _) = two_particles(); // γ = 1 (w 2) and √2 (w 1)
        let h = gamma_spectrum(&ens, 10, 2.0);
        assert!((h.total() - 3.0).abs() < 1e-12);
        assert_eq!(h.peak_bin(), 0); // the heavier γ=1 population
                                     // √2 ≈ 1.414 → bin 4 of [1,2).
        assert_eq!(h.counts[4], 1.0);
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn zero_bins_panics() {
        let _ = Histogram::build([], 0, 0.0, 1.0);
    }
}

//! Relativistic particle pushers — the computational core the paper ports
//! to DPC++.
//!
//! The crate implements the conventional **Boris** scheme (paper §2,
//! Eqs. 6–13) plus the two standard alternatives surveyed by the paper's
//! Ref. \[11] (Ripperda et al. 2018), **Vay** and **Higuera–Cary**, all over
//! the layout-agnostic [`pic_particles::ParticleView`] proxy so one kernel
//! serves both AoS and SoA ensembles:
//!
//! * [`BorisPusher`] — half electric kick, exact-|p| magnetic rotation,
//!   half electric kick, leapfrog position update.
//! * [`VayPusher`] — Vay (2008) velocity average; correct E×B drift.
//! * [`HigueraCaryPusher`] — Higuera–Cary (2017) volume-preserving form.
//! * [`PushKernel`] — binds a pusher to a field source and species table,
//!   ready for [`pic_particles::ParticleAccess::for_each_mut`] or the
//!   parallel runtime.
//! * [`kernel::FieldSource`] — per-particle field lookup: analytical
//!   sampling (scenario 2) or precalculated arrays (scenario 1).
//! * [`batch`] — an explicitly blocked (8-wide) Boris kernel mirroring the
//!   AVX-512 vectorization of the paper's C++ loop.
//! * [`soa_boris`] — the zero-gather fast path: the same blocked arithmetic
//!   run directly over SoA component slices, no gather/scatter round-trip.
//! * [`diag`] — ensemble diagnostics (kinetic energy, mean γ, …).
//!
//! # Example: one gyration step
//!
//! ```
//! use pic_boris::{BorisPusher, Pusher};
//! use pic_fields::EB;
//! use pic_math::Vec3;
//! use pic_particles::{Particle, Species, SpeciesTable};
//!
//! let species = Species::<f64>::electron();
//! let mut p = Particle::at_rest(Vec3::zero(), 1.0, SpeciesTable::<f64>::ELECTRON);
//! let field = EB::new(Vec3::new(1.0, 0.0, 0.0), Vec3::zero());
//! BorisPusher.push(&mut p, &field, &species, 1.0e-12);
//! // qE·dt of momentum gained (q < 0 for the electron).
//! assert!(p.momentum.x < 0.0);
//! assert!(p.gamma > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod boris;
pub mod diag;
pub mod higuera;
pub mod kernel;
pub mod pusher;
pub mod radiation;
pub mod soa_boris;
pub mod trajectory;
pub mod vay;

pub use batch::BatchBorisKernel;
pub use boris::BorisPusher;
pub use higuera::HigueraCaryPusher;
pub use kernel::{
    AnalyticalSource, FieldSource, PrecalculatedSource, PushKernel, SharedPushKernel,
};
pub use pusher::{OpTally, Pusher};
pub use radiation::RadiationReactionPusher;
pub use soa_boris::SoaBorisKernel;
pub use vay::VayPusher;

//! Radiation-reaction extension: the Landau–Lifshitz correction.
//!
//! The paper's benchmark deliberately stays below the radiation-dominated
//! regime (§5.2: powers where "radiative trapping effects are absent",
//! citing Gonoskov et al., PRL 113, 014801 — the paper's Ref. \[25]). At
//! multi-PW powers the Hi-Chi toolchain needs the classical
//! radiation-reaction force; this module provides it as a decorator over
//! any base pusher, using the dominant (ultrarelativistic) term of the
//! Landau–Lifshitz equation:
//!
//! ```text
//! F_RR = −(2q⁴)/(3m²c⁴) · γ² · [ (E + β×B)² − (β·E)² ] · β
//! ```
//!
//! In a pure magnetic field this reproduces the synchrotron power
//! `P = (2/3) r_e² c γ² β² B⊥²` for γ ≫ 1, which the tests verify.

use crate::pusher::{OpTally, Pusher};
use pic_fields::EB;
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::{Real, Vec3};
use pic_particles::{particle::lorentz_gamma, ParticleView, Species};

/// Decorates a base pusher with the Landau–Lifshitz radiation-reaction
/// force, applied as an explicit momentum correction after the base step.
///
/// # Example
///
/// ```
/// use pic_boris::{BorisPusher, RadiationReactionPusher, Pusher};
///
/// let pusher = RadiationReactionPusher::new(BorisPusher);
/// assert_eq!(Pusher::<f64>::name(&pusher), "Boris+LL");
/// ```
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct RadiationReactionPusher<P> {
    inner: P,
}

impl<P> RadiationReactionPusher<P> {
    /// Wraps a base pusher.
    pub fn new(inner: P) -> RadiationReactionPusher<P> {
        RadiationReactionPusher { inner }
    }

    /// The wrapped pusher.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

/// The Landau–Lifshitz force (dominant term), erg/cm.
///
/// `momentum` is the particle momentum, `field` the local field, in CGS.
pub fn landau_lifshitz_force<R: Real>(
    momentum: Vec3<R>,
    field: &EB<R>,
    species: &Species<R>,
) -> Vec3<R> {
    let c = R::from_f64(LIGHT_VELOCITY);
    let gamma = lorentz_gamma(momentum, species.mass);
    let beta = momentum / (gamma * species.mass * c);
    let q2 = species.charge * species.charge;
    let mc2 = species.mass * c * c;
    // (2/3) q⁴ / (m²c⁴) = (2/3) (q²/mc²)²  — the classical radius squared
    // for the elementary charge.
    let coef = R::from_f64(2.0 / 3.0) * (q2 / mc2) * (q2 / mc2);
    let lorentz = field.e + beta.cross(field.b);
    let invariant = lorentz.norm2() - beta.dot(field.e) * beta.dot(field.e);
    beta * (-coef * gamma * gamma * invariant)
}

impl<R: Real, P: Pusher<R>> Pusher<R> for RadiationReactionPusher<P> {
    #[inline]
    fn push<V: ParticleView<R>>(&self, view: &mut V, field: &EB<R>, species: &Species<R>, dt: R) {
        self.inner.push(view, field, species, dt);
        let p = view.momentum();
        let f = landau_lifshitz_force(p, field, species);
        let p_new = p + f * dt;
        view.set_momentum(p_new);
        view.set_gamma(lorentz_gamma(p_new, species.mass));
    }

    fn name(&self) -> &'static str {
        "Boris+LL"
    }

    fn tally(&self) -> OpTally {
        // Landau–Lifshitz correction on top of the base step: γ(p)
        // (6m+3a+√), β (5m+÷), E+β×B (6m+6a), the two invariant terms
        // (7m+5a), force assembly (6m), p += F·dt and the γ refresh
        // (6m+6a+√). Operands are cache-hot after the base push, so no
        // extra memory traffic.
        self.inner.tally().combine(OpTally {
            adds: 20,
            muls: 36,
            divs: 1,
            sqrts: 2,
            ..OpTally::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boris::BorisPusher;
    use pic_math::constants::{ELECTRON_MASS, ELECTRON_REST_ENERGY};
    use pic_particles::{Particle, SpeciesId, SpeciesTable};

    const EL: SpeciesId = SpeciesTable::<f64>::ELECTRON;

    /// Classical electron radius, cm.
    const R_E: f64 = 2.8179403262e-13;

    fn relativistic_electron(gamma: f64) -> Particle<f64> {
        let mc = ELECTRON_MASS * LIGHT_VELOCITY;
        let u = (gamma * gamma - 1.0).sqrt();
        Particle::new(
            Vec3::zero(),
            Vec3::new(u * mc, 0.0, 0.0),
            1.0,
            EL,
            ELECTRON_MASS,
        )
    }

    #[test]
    fn synchrotron_power_matches_theory() {
        // P_sync = (2/3) r_e² c γ² β² B⊥² for p ⊥ B (β⁴ ≈ β² at γ ≫ 1).
        let sp = Species::<f64>::electron();
        let gamma = 100.0;
        let b = 1.0e9; // strong field so the loss is visible
        let field = EB::new(Vec3::zero(), Vec3::new(0.0, 0.0, b));
        let p = relativistic_electron(gamma);
        let f = landau_lifshitz_force(p.momentum, &field, &sp);
        let beta = p.velocity(&sp).norm() / LIGHT_VELOCITY;
        let power = -f.dot(p.velocity(&sp)); // energy loss rate, erg/s
        let expect = 2.0 / 3.0 * R_E * R_E * LIGHT_VELOCITY * gamma * gamma * beta.powi(4) * b * b;
        assert!(
            (power - expect).abs() / expect < 1e-6,
            "P = {power:.4e}, expected {expect:.4e}"
        );
    }

    #[test]
    fn force_opposes_motion() {
        let sp = Species::<f64>::electron();
        let field = EB::new(Vec3::new(1e8, 0.0, 0.0), Vec3::new(0.0, 0.0, 1e8));
        let p = relativistic_electron(50.0);
        let f = landau_lifshitz_force(p.momentum, &field, &sp);
        assert!(f.dot(p.momentum) < 0.0, "RR force must damp the motion");
    }

    #[test]
    fn particle_loses_energy_in_strong_b() {
        let sp = Species::<f64>::electron();
        let table = SpeciesTable::<f64>::with_standard_species();
        let _ = table;
        let b = 1.0e9;
        let field = EB::new(Vec3::zero(), Vec3::new(0.0, 0.0, b));
        let mut p = relativistic_electron(100.0);
        let pusher = RadiationReactionPusher::new(BorisPusher);
        let dt = 1e-18;
        let steps = 200;
        let gamma0 = p.gamma;
        let mut prev = p.gamma;
        for _ in 0..steps {
            pusher.push(&mut p, &field, &sp, dt);
            assert!(p.gamma <= prev + 1e-12, "γ must decrease monotonically");
            prev = p.gamma;
        }
        // Compare with the analytic loss rate at the initial state.
        let beta = (1.0f64 - 1.0 / (gamma0 * gamma0)).sqrt();
        let power = 2.0 / 3.0 * R_E * R_E * LIGHT_VELOCITY * gamma0 * gamma0 * beta.powi(4) * b * b;
        let expected_dgamma = power * dt * steps as f64 / ELECTRON_REST_ENERGY;
        let measured_dgamma = gamma0 - p.gamma;
        assert!(
            (measured_dgamma - expected_dgamma).abs() / expected_dgamma < 0.02,
            "Δγ = {measured_dgamma:.4} vs {expected_dgamma:.4}"
        );
    }

    #[test]
    fn negligible_at_benchmark_intensity() {
        // At the paper's 0.1 PW the run is below the radiation-dominated
        // regime: RR barely perturbs the trajectory over a wave period.
        let sp = Species::<f64>::electron();
        let a0 = 2.2e10; // the benchmark's A₀, statV/cm
        let field = EB::new(Vec3::new(a0, 0.0, 0.0), Vec3::new(0.0, 0.0, a0));
        let dt = 2.0 * std::f64::consts::PI / pic_math::constants::BENCH_OMEGA / 100.0;

        let mut plain = relativistic_electron(10.0);
        let mut rr = plain;
        for _ in 0..100 {
            BorisPusher.push(&mut plain, &field, &sp, dt);
            RadiationReactionPusher::new(BorisPusher).push(&mut rr, &field, &sp, dt);
        }
        let rel = (plain.momentum - rr.momentum).norm() / plain.momentum.norm();
        assert!(rel < 0.05, "RR correction should be small here: {rel}");
        assert!(rel > 0.0, "…but not identically zero");
    }

    #[test]
    fn zero_field_is_inert() {
        let sp = Species::<f64>::electron();
        let mut p = relativistic_electron(5.0);
        let before = p.momentum;
        RadiationReactionPusher::new(BorisPusher).push(&mut p, &EB::zero(), &sp, 1e-15);
        // Free streaming: LL force vanishes without fields.
        assert!((p.momentum - before).norm() <= 32.0 * f64::EPSILON * before.norm());
    }
}

//! Roofline analysis: classify kernels as memory- or compute-bound.
//!
//! The paper's Table 2 discussion rests on one diagnosis — "the problem is
//! memory bound" (conclusion 5) — and the scenario comparison is exactly a
//! walk along the roofline: Precalculated lowers arithmetic intensity
//! (more bytes), Analytical raises it (more flops). This module makes the
//! analysis explicit and testable.

use crate::cost::KernelCost;

/// A machine roofline: peak compute vs peak memory throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Roofline {
    /// Peak (achievable) arithmetic throughput, flop/s.
    pub peak_flops: f64,
    /// Peak (achievable) memory bandwidth, B/s.
    pub peak_bandwidth: f64,
}

/// Which resource bounds a kernel on a given machine.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum Bound {
    /// Performance limited by DRAM bandwidth.
    Memory,
    /// Performance limited by arithmetic throughput.
    Compute,
}

impl Roofline {
    /// Creates a roofline.
    ///
    /// # Panics
    ///
    /// Panics if either peak is not positive.
    pub fn new(peak_flops: f64, peak_bandwidth: f64) -> Roofline {
        assert!(
            peak_flops > 0.0 && peak_bandwidth > 0.0,
            "Roofline: peaks must be positive"
        );
        Roofline {
            peak_flops,
            peak_bandwidth,
        }
    }

    /// The machine balance: the arithmetic intensity (flop/byte) at the
    /// roofline ridge. Kernels below it are memory-bound.
    pub fn machine_balance(&self) -> f64 {
        self.peak_flops / self.peak_bandwidth
    }

    /// Attainable throughput (flop/s) at arithmetic intensity `ai`
    /// (flop/byte): `min(peak_flops, ai·peak_bandwidth)`.
    pub fn attainable_flops(&self, ai: f64) -> f64 {
        self.peak_flops.min(ai * self.peak_bandwidth)
    }

    /// Classifies a kernel cost.
    pub fn bound_of(&self, cost: &KernelCost) -> Bound {
        if cost.intensity() < self.machine_balance() {
            Bound::Memory
        } else {
            Bound::Compute
        }
    }

    /// Predicted execution time for `n` kernel instances, seconds — the
    /// roofline max of the memory and compute times.
    pub fn time(&self, cost: &KernelCost, n: usize) -> f64 {
        let mem = n as f64 * cost.bytes_total() / self.peak_bandwidth;
        let comp = n as f64 * cost.flops / self.peak_flops;
        mem.max(comp)
    }

    /// Fraction of the limiting resource's peak that the *other* resource
    /// reaches (1.0 at the ridge). Low values mean the kernel is far from
    /// balanced.
    pub fn balance_ratio(&self, cost: &KernelCost) -> f64 {
        let mem = cost.bytes_total() / self.peak_bandwidth;
        let comp = cost.flops / self.peak_flops;
        if mem >= comp {
            comp / mem
        } else {
            mem / comp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Precision, Scenario};
    use crate::cpu::CpuModel;
    use crate::gpu::GpuModel;
    use pic_particles::Layout;

    fn endeavour_roofline() -> Roofline {
        // Achieved (calibrated) peaks of the CPU model at 48 cores, f32.
        let m = CpuModel::endeavour();
        Roofline::new(
            m.flop_rate_at(48, Layout::Soa, Precision::F32),
            m.bandwidth_at(48, Layout::Aos),
        )
    }

    #[test]
    fn benchmark_is_memory_bound_in_the_precalculated_scenario() {
        // Paper conclusion 5: "the problem is memory bound".
        let r = endeavour_roofline();
        let pre = KernelCost::boris(Scenario::Precalculated, Layout::Aos, Precision::F32);
        assert_eq!(r.bound_of(&pre), Bound::Memory);
        // The analytical scenario climbs toward (or past) the ridge.
        let ana = KernelCost::boris(Scenario::Analytical, Layout::Aos, Precision::F32);
        assert!(ana.intensity() > pre.intensity() * 3.0);
    }

    #[test]
    fn machine_balance_is_in_a_plausible_hpc_range() {
        let r = endeavour_roofline();
        // Achieved-flops/achieved-bandwidth for Cascade Lake lands at a
        // few flops per byte.
        let mb = r.machine_balance();
        assert!((0.5..20.0).contains(&mb), "machine balance {mb}");
    }

    #[test]
    fn attainable_follows_the_two_regimes() {
        let r = Roofline::new(100.0, 10.0); // balance = 10 flop/B
        assert_eq!(r.attainable_flops(1.0), 10.0); // slanted roof
        assert_eq!(r.attainable_flops(10.0), 100.0); // ridge
        assert_eq!(r.attainable_flops(1000.0), 100.0); // flat roof
    }

    #[test]
    fn time_matches_cpu_model_roofline() {
        // The standalone roofline with the CPU model's achieved peaks must
        // reproduce the model's own NSPS for the OpenMP row.
        let m = CpuModel::endeavour();
        for scenario in Scenario::all() {
            let cost = KernelCost::boris(scenario, Layout::Aos, Precision::F32);
            let r = Roofline::new(
                m.flop_rate_at(48, Layout::Aos, Precision::F32),
                m.bandwidth_at(48, Layout::Aos),
            );
            let nsps_roofline = r.time(&cost, 1) * 1e9;
            let nsps_model = m.nsps(
                scenario,
                Layout::Aos,
                Precision::F32,
                crate::cpu::Parallelization::OpenMp,
                48,
            );
            assert!(
                (nsps_roofline - nsps_model).abs() / nsps_model < 1e-12,
                "{scenario}: {nsps_roofline} vs {nsps_model}"
            );
        }
    }

    #[test]
    fn gpu_precalculated_is_deep_in_the_memory_regime() {
        let gpu = GpuModel::p630();
        let r = Roofline::new(
            gpu.spec.peak_flops_f32 * gpu.cal.comp_eff,
            gpu.spec.mem_bandwidth * gpu.cal.mem_eff,
        );
        let pre = KernelCost::boris(Scenario::Precalculated, Layout::Soa, Precision::F32);
        assert_eq!(r.bound_of(&pre), Bound::Memory);
        assert!(r.balance_ratio(&pre) < 0.5, "{}", r.balance_ratio(&pre));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_peak_panics() {
        let _ = Roofline::new(0.0, 1.0);
    }
}

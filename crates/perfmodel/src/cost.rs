//! Per-particle cost descriptors of the Boris kernel.
//!
//! Byte counts follow the real data structures (paper §3 and
//! `pic-particles`): a particle record is 36 B in single precision / 72 B
//! in double after alignment; the SoA kernel touches only the columns it
//! uses; the Precalculated scenario streams six extra field components per
//! particle. Flop counts are flop-*equivalents*: transcendental and
//! divide/sqrt operations are weighted by their typical vector-unit
//! reciprocal throughput.

use pic_particles::Layout;

/// Floating-point precision of a run (the paper's `FP` switch).
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum Precision {
    /// 32-bit `float`.
    F32,
    /// 64-bit `double`.
    F64,
}

impl Precision {
    /// Bytes per scalar.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }

    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "float",
            Precision::F64 => "double",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The paper's two benchmark scenarios (§5.2).
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum Scenario {
    /// Field values pre-stored in a per-particle array.
    Precalculated,
    /// Field values computed from the m-dipole formulas at each particle.
    Analytical,
}

impl Scenario {
    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Precalculated => "Precalculated Fields",
            Scenario::Analytical => "Analytical Fields",
        }
    }

    /// All scenarios, in the paper's column order.
    pub fn all() -> [Scenario; 2] {
        [Scenario::Precalculated, Scenario::Analytical]
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-particle, per-step resource demand of the push kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelCost {
    /// DRAM bytes read per particle per step.
    pub bytes_read: f64,
    /// DRAM bytes written per particle per step.
    pub bytes_written: f64,
    /// Flop-equivalents per particle per step (transcendentals weighted).
    pub flops: f64,
}

impl KernelCost {
    /// Total DRAM traffic per particle per step.
    pub fn bytes_total(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity, flop-equivalents per byte.
    pub fn intensity(&self) -> f64 {
        self.flops / self.bytes_total()
    }
}

/// Flop-equivalents of the Boris momentum + position update: ~50 mul/add,
/// two square roots (≈8 each), a division (≈8). Matches an operation count
/// of `BorisPusher::rotate_kick` + `advance_position`.
pub const BORIS_FLOPS: f64 = 80.0;

/// Flop-equivalents of one m-dipole field evaluation: a sincos pair
/// (≈50 in vectorized libm), two square roots, several divisions and ~40
/// mul/adds across f₁/f₂/f₃ and the component assembly.
pub const DIPOLE_FLOPS: f64 = 150.0;

/// Cost descriptor of the benchmark kernel for one configuration.
///
/// # Example
///
/// ```
/// use pic_perfmodel::{KernelCost, Precision, Scenario};
/// use pic_particles::Layout;
///
/// let aos = KernelCost::boris(Scenario::Precalculated, Layout::Aos, Precision::F32);
/// let soa = KernelCost::boris(Scenario::Precalculated, Layout::Soa, Precision::F32);
/// // AoS streams whole records; SoA only the used columns.
/// assert!(aos.bytes_total() > soa.bytes_total());
/// ```
impl KernelCost {
    /// Builds the cost descriptor for the benchmark Boris kernel.
    pub fn boris(scenario: Scenario, layout: Layout, precision: Precision) -> KernelCost {
        let s = precision.bytes() as f64;
        // Particle traffic.
        let (p_read, p_write) = match layout {
            // The whole aligned record streams through the core and the
            // dirtied line is written back: 9 scalar-equivalents
            // (position 3, momentum 3, weight, γ, padded type).
            Layout::Aos => (9.0 * s, 9.0 * s),
            // Only the used columns move: read position+momentum+type,
            // write position+momentum+γ.
            Layout::Soa => (6.0 * s + 2.0, 7.0 * s),
        };
        // Field traffic: 6 components read in the Precalculated scenario.
        let field_read = match scenario {
            Scenario::Precalculated => 6.0 * s,
            Scenario::Analytical => 0.0,
        };
        let flops = match scenario {
            Scenario::Precalculated => BORIS_FLOPS,
            Scenario::Analytical => BORIS_FLOPS + DIPOLE_FLOPS,
        };
        KernelCost {
            bytes_read: p_read + field_read,
            bytes_written: p_write,
            flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aos_record_size_matches_paper() {
        // Paper §3: 36 B per particle in single precision, 72 B in double
        // (after alignment). Read + write = twice that.
        let f32_cost = KernelCost::boris(Scenario::Analytical, Layout::Aos, Precision::F32);
        assert_eq!(f32_cost.bytes_read, 36.0);
        assert_eq!(f32_cost.bytes_written, 36.0);
        let f64_cost = KernelCost::boris(Scenario::Analytical, Layout::Aos, Precision::F64);
        assert_eq!(f64_cost.bytes_total(), 144.0);
    }

    #[test]
    fn precalculated_adds_six_components() {
        for &(layout, prec) in &[(Layout::Aos, Precision::F32), (Layout::Soa, Precision::F64)] {
            let pre = KernelCost::boris(Scenario::Precalculated, layout, prec);
            let ana = KernelCost::boris(Scenario::Analytical, layout, prec);
            assert_eq!(pre.bytes_read - ana.bytes_read, 6.0 * prec.bytes() as f64);
            assert_eq!(pre.bytes_written, ana.bytes_written);
        }
    }

    #[test]
    fn analytical_is_more_compute_intense() {
        let pre = KernelCost::boris(Scenario::Precalculated, Layout::Soa, Precision::F32);
        let ana = KernelCost::boris(Scenario::Analytical, Layout::Soa, Precision::F32);
        assert!(ana.intensity() > 2.0 * pre.intensity());
        assert_eq!(ana.flops, BORIS_FLOPS + DIPOLE_FLOPS);
    }

    #[test]
    fn double_doubles_the_traffic() {
        let f32_cost = KernelCost::boris(Scenario::Precalculated, Layout::Aos, Precision::F32);
        let f64_cost = KernelCost::boris(Scenario::Precalculated, Layout::Aos, Precision::F64);
        assert_eq!(f64_cost.bytes_total(), 2.0 * f32_cost.bytes_total());
    }

    #[test]
    fn soa_moves_fewer_bytes_than_aos() {
        for scenario in Scenario::all() {
            for prec in [Precision::F32, Precision::F64] {
                let aos = KernelCost::boris(scenario, Layout::Aos, prec);
                let soa = KernelCost::boris(scenario, Layout::Soa, prec);
                assert!(soa.bytes_total() < aos.bytes_total());
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Precision::F32.to_string(), "float");
        assert_eq!(Precision::F64.to_string(), "double");
        assert_eq!(Scenario::Precalculated.to_string(), "Precalculated Fields");
    }

    /// Reconciles the hand-counted pusher tallies (`pic_boris::OpTally`)
    /// against this crate's static constants. The two are independent
    /// estimates of the same kernel: `BORIS_FLOPS` models the vectorized
    /// C++ loop coarsely ("~50 mul/add"), the tally counts the Rust
    /// implementation operation by operation, so they are required to
    /// agree in magnitude (within 2×), not digit for digit.
    mod tally_reconciliation {
        use super::*;
        use pic_boris::{BorisPusher, HigueraCaryPusher, Pusher, VayPusher};

        #[test]
        fn boris_tally_matches_model_flops_in_magnitude() {
            let tally = Pusher::<f64>::tally(&BorisPusher).flop_equivalents();
            let ratio = tally / BORIS_FLOPS;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "tally {tally} vs BORIS_FLOPS {BORIS_FLOPS} (ratio {ratio:.2})"
            );
        }

        #[test]
        fn alternative_pushers_stay_within_the_boris_model_band() {
            // Vay and Higuera–Cary replace the rotation, not the memory
            // pattern: the model's flops constant must remain a magnitude
            // estimate for them too.
            for tally in [
                Pusher::<f64>::tally(&VayPusher),
                Pusher::<f64>::tally(&HigueraCaryPusher),
            ] {
                let ratio = tally.flop_equivalents() / BORIS_FLOPS;
                assert!((0.5..=3.0).contains(&ratio), "ratio {ratio:.2}");
            }
        }

        #[test]
        fn tally_traffic_matches_soa_cost_model() {
            // The SoA cost model streams exactly the columns the pusher
            // touches, so the byte counts must line up scalar for scalar
            // (the model adds 2 B for the one-byte type tag read and the
            // Precalculated field array; the tally counts the same six
            // field components as reads).
            let t = Pusher::<f64>::tally(&BorisPusher);
            for prec in [Precision::F32, Precision::F64] {
                let s = prec.bytes();
                let cost = KernelCost::boris(Scenario::Precalculated, Layout::Soa, prec);
                assert_eq!(cost.bytes_written, t.bytes_written(s));
                assert_eq!(cost.bytes_read - 2.0, t.bytes_read(s));
            }
        }
    }
}

//! Discrete-event simulation of the scheduling policies.
//!
//! The paper (§4.3) motivates TBB's dynamic scheduling: "TBB always uses
//! dynamic scheduling, which can substantially improve performance in
//! complex unbalanced problems. However, in balanced applications, the
//! overhead of dynamic scheduling may not be justified." The analytic CPU
//! model treats these as calibrated constants; this module *derives* the
//! effect from first principles with a list-scheduling simulation over
//! per-item service times, so the trade-off can be explored for arbitrary
//! load shapes (see the `schedule_sim` bench target).

use std::collections::BinaryHeap;

/// Scheduling policy of the simulated runtime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimPolicy {
    /// Contiguous blocks, one per thread, assigned up front (OpenMP
    /// static).
    Static,
    /// A shared queue of fixed-size grains (TBB/DPC++ dynamic).
    Dynamic {
        /// Items per grain.
        grain: usize,
    },
    /// A shared queue of geometrically shrinking grains (OpenMP guided).
    Guided {
        /// Smallest grain.
        min_grain: usize,
    },
}

/// The simulated runtime: a thread count and a per-grain dispatch cost
/// (queue pop + cache warm-up), seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedSim {
    /// Worker threads.
    pub threads: usize,
    /// Fixed cost a thread pays for every grain it acquires, s.
    pub dispatch_overhead: f64,
}

/// Outcome of one simulated sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedOutcome {
    /// Wall-clock makespan, s.
    pub makespan: f64,
    /// Parallel efficiency: total work / (threads × makespan).
    pub efficiency: f64,
    /// Number of grains dispatched.
    pub grains: usize,
}

impl SchedSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or the overhead is negative.
    pub fn new(threads: usize, dispatch_overhead: f64) -> SchedSim {
        assert!(threads > 0, "SchedSim: zero threads");
        assert!(dispatch_overhead >= 0.0, "SchedSim: negative overhead");
        SchedSim {
            threads,
            dispatch_overhead,
        }
    }

    /// Simulates one sweep over items with the given per-item service
    /// times (seconds).
    pub fn run(&self, service: &[f64], policy: SimPolicy) -> SchedOutcome {
        let total: f64 = service.iter().sum();
        if service.is_empty() {
            return SchedOutcome {
                makespan: 0.0,
                efficiency: 1.0,
                grains: 0,
            };
        }
        let grain_bounds = self.grain_bounds(service.len(), policy);
        let makespan = self.greedy_makespan(service, &grain_bounds, policy);
        SchedOutcome {
            makespan,
            efficiency: total / (self.threads as f64 * makespan),
            grains: grain_bounds.len(),
        }
    }

    /// Produces `(start, end)` item ranges for the policy's grains.
    fn grain_bounds(&self, items: usize, policy: SimPolicy) -> Vec<(usize, usize)> {
        let mut bounds = Vec::new();
        match policy {
            SimPolicy::Static => {
                let block = items.div_ceil(self.threads);
                let mut start = 0;
                while start < items {
                    let end = (start + block).min(items);
                    bounds.push((start, end));
                    start = end;
                }
            }
            SimPolicy::Dynamic { grain } => {
                let g = grain.max(1);
                let mut start = 0;
                while start < items {
                    let end = (start + g).min(items);
                    bounds.push((start, end));
                    start = end;
                }
            }
            SimPolicy::Guided { min_grain } => {
                let floor = min_grain.max(1);
                let mut start = 0;
                while start < items {
                    let remaining = items - start;
                    let g = (remaining / (2 * self.threads)).max(floor).min(remaining);
                    bounds.push((start, start + g));
                    start += g;
                }
            }
        }
        bounds
    }

    /// Greedy list scheduling: for the static policy each block is pinned
    /// to its thread; for queue policies the next grain goes to the thread
    /// that frees up first — exactly the behaviour of a work queue.
    fn greedy_makespan(
        &self,
        service: &[f64],
        bounds: &[(usize, usize)],
        policy: SimPolicy,
    ) -> f64 {
        let grain_time = |(s, e): (usize, usize)| -> f64 {
            self.dispatch_overhead + service[s..e].iter().sum::<f64>()
        };
        match policy {
            SimPolicy::Static => bounds.iter().map(|&b| grain_time(b)).fold(0.0, f64::max),
            _ => {
                // Min-heap of thread finish times (Reverse ordering via
                // negation to stay with f64).
                #[derive(PartialEq)]
                struct T(f64);
                impl Eq for T {}
                impl PartialOrd for T {
                    fn partial_cmp(&self, o: &T) -> Option<std::cmp::Ordering> {
                        Some(self.cmp(o))
                    }
                }
                impl Ord for T {
                    fn cmp(&self, o: &T) -> std::cmp::Ordering {
                        // Reversed: smallest finish time pops first.
                        // lint: allow(unwrap-in-lib): grain times are
                        // finite model outputs; NaN cannot enter the heap.
                        o.0.partial_cmp(&self.0).expect("finite times")
                    }
                }
                let mut heap: BinaryHeap<T> = (0..self.threads).map(|_| T(0.0)).collect();
                for &b in bounds {
                    // lint: allow(unwrap-in-lib): heap was seeded with one
                    // entry per thread and threads is validated non-zero.
                    let T(free_at) = heap.pop().expect("threads > 0");
                    heap.push(T(free_at + grain_time(b)));
                }
                heap.into_iter().map(|T(t)| t).fold(0.0, f64::max)
            }
        }
    }
}

/// Synthetic per-item service-time shapes for experiments.
pub mod workloads {
    /// Uniform cost per item.
    pub fn balanced(items: usize, cost: f64) -> Vec<f64> {
        vec![cost; items]
    }

    /// Cost ramps linearly from `cost` to `3·cost` across the range.
    pub fn ramp(items: usize, cost: f64) -> Vec<f64> {
        (0..items)
            .map(|i| cost * (1.0 + 2.0 * i as f64 / items.max(1) as f64))
            .collect()
    }

    /// A hotspot: the first `hot_fraction` of items cost `factor`× more —
    /// e.g. particles inside the laser focus doing field evaluations with
    /// more series terms.
    pub fn hotspot(items: usize, cost: f64, hot_fraction: f64, factor: f64) -> Vec<f64> {
        let hot = (items as f64 * hot_fraction) as usize;
        (0..items)
            .map(|i| if i < hot { cost * factor } else { cost })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::workloads::*;
    use super::*;

    const OH: f64 = 1e-7;

    #[test]
    fn balanced_static_is_near_optimal() {
        let sim = SchedSim::new(8, OH);
        let work = balanced(8000, 1e-6);
        let st = sim.run(&work, SimPolicy::Static);
        assert!(st.efficiency > 0.99, "eff = {}", st.efficiency);
        assert_eq!(st.grains, 8);
    }

    #[test]
    fn balanced_dynamic_pays_dispatch_overhead() {
        // Paper §4.3: "in balanced applications, the overhead of dynamic
        // scheduling may not be justified".
        let sim = SchedSim::new(8, 5e-6);
        let work = balanced(8000, 1e-6);
        let st = sim.run(&work, SimPolicy::Static);
        let dy = sim.run(&work, SimPolicy::Dynamic { grain: 50 });
        assert!(
            dy.makespan > st.makespan,
            "{} vs {}",
            dy.makespan,
            st.makespan
        );
    }

    #[test]
    fn imbalanced_dynamic_beats_static_substantially() {
        // Paper §4.3: dynamic "can substantially improve performance in
        // complex unbalanced problems".
        let sim = SchedSim::new(8, OH);
        let work = hotspot(8000, 1e-6, 0.125, 10.0); // thread 0's block is hot
        let st = sim.run(&work, SimPolicy::Static);
        let dy = sim.run(&work, SimPolicy::Dynamic { grain: 50 });
        assert!(
            st.makespan > 1.5 * dy.makespan,
            "static {} vs dynamic {}",
            st.makespan,
            dy.makespan
        );
        assert!(dy.efficiency > 0.9);
    }

    #[test]
    fn guided_uses_fewer_grains_than_dynamic() {
        let sim = SchedSim::new(8, OH);
        let work = ramp(8000, 1e-6);
        let dy = sim.run(&work, SimPolicy::Dynamic { grain: 50 });
        let gd = sim.run(&work, SimPolicy::Guided { min_grain: 50 });
        assert!(gd.grains < dy.grains, "{} vs {}", gd.grains, dy.grains);
        // Still balances the ramp well.
        assert!(gd.efficiency > 0.9, "eff = {}", gd.efficiency);
    }

    #[test]
    fn makespan_bounds_hold() {
        let sim = SchedSim::new(4, 0.0);
        let work = ramp(1000, 1e-6);
        let total: f64 = work.iter().sum();
        for policy in [
            SimPolicy::Static,
            SimPolicy::Dynamic { grain: 10 },
            SimPolicy::Guided { min_grain: 10 },
        ] {
            let out = sim.run(&work, policy);
            assert!(out.makespan >= total / 4.0 - 1e-12, "{policy:?}");
            assert!(out.makespan <= total + 1e-12, "{policy:?}");
            assert!(out.efficiency <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn empty_workload() {
        let sim = SchedSim::new(4, OH);
        let out = sim.run(&[], SimPolicy::Static);
        assert_eq!(out.makespan, 0.0);
        assert_eq!(out.grains, 0);
    }

    #[test]
    fn single_thread_makespan_is_total_plus_overheads() {
        let sim = SchedSim::new(1, 1e-6);
        let work = balanced(100, 1e-6);
        let out = sim.run(&work, SimPolicy::Dynamic { grain: 10 });
        let expect = 100.0 * 1e-6 + 10.0 * 1e-6;
        assert!((out.makespan - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero threads")]
    fn zero_threads_panics() {
        let _ = SchedSim::new(0, 0.0);
    }
}

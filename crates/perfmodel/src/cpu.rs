//! Roofline + scheduling + NUMA-locality model of the CPU platform.
//!
//! The modeled quantity is the paper's NSPS metric (nanoseconds per
//! particle per step). One configuration is characterized by its
//! [`KernelCost`] and the execution mode:
//!
//! * memory time = bytes / achievable bandwidth, where the bandwidth grows
//!   with thread count until each socket's DRAM saturates (this produces
//!   Fig. 1's per-socket knee);
//! * compute time = flop-equivalents / achieved vector throughput (with an
//!   AoS gather/scatter penalty);
//! * the step time is the roofline max of the two, times a mode factor:
//!   OpenMP = 1; DPC++ NUMA = small runtime overhead that shrinks with
//!   thread count (its serial slowness is what makes the paper's Fig. 1
//!   DPC++ curve super-linear at first); plain DPC++ additionally loses
//!   NUMA locality, inflating every step (paper §4.3, Table 2).
//!
//! Calibration constants live in [`CpuCalibration`]; each is an
//! independently meaningful hardware-efficiency fraction, not a per-cell
//! fudge: the same eight numbers reproduce all 24 Table-2 cells within
//! ±30 % and the Fig. 1 curve shapes.

use crate::cost::{KernelCost, Precision, Scenario};
use crate::specs::CpuSpec;
use pic_particles::Layout;

/// The paper's three CPU execution modes (Table 2 rows).
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum Parallelization {
    /// OpenMP reference: static schedule, first-touch NUMA locality.
    OpenMp,
    /// DPC++ on TBB, no NUMA pinning: dynamic chunks roam across sockets.
    Dpcpp,
    /// DPC++ with `DPCPP_CPU_PLACES=numa_domains`.
    DpcppNuma,
}

impl Parallelization {
    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Parallelization::OpenMp => "OpenMP",
            Parallelization::Dpcpp => "DPC++",
            Parallelization::DpcppNuma => "DPC++ NUMA",
        }
    }

    /// All modes in the paper's row order.
    pub fn all() -> [Parallelization; 3] {
        [
            Parallelization::OpenMp,
            Parallelization::Dpcpp,
            Parallelization::DpcppNuma,
        ]
    }
}

impl std::fmt::Display for Parallelization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Efficiency fractions calibrated once against the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuCalibration {
    /// Fraction of theoretical socket DRAM bandwidth a fully loaded socket
    /// sustains on this streaming kernel (STREAM-like workloads reach
    /// 60–70 % on Cascade Lake).
    pub socket_bw_eff: f64,
    /// Achievable DRAM bandwidth of a single core, B/s (limited by
    /// outstanding-miss capacity, ~6 GB/s on this kernel).
    pub per_core_bw: f64,
    /// SoA drives 9+ concurrent streams vs AoS's one, costing some DRAM
    /// page locality.
    pub soa_stream_eff: f64,
    /// Fraction of peak FMA throughput the vectorized kernel achieves
    /// (transcendental-heavy code lands well below 10 %).
    pub vec_eff: f64,
    /// Compute-side AoS gather/scatter penalty, single precision
    /// (16-lane gathers are expensive).
    pub aos_gather_eff_f32: f64,
    /// Compute-side AoS penalty, double precision (8-lane gathers hurt
    /// less).
    pub aos_gather_eff_f64: f64,
    /// Residual DPC++/TBB overhead at full thread count.
    pub dpcpp_numa_factor: f64,
    /// Extra serial inefficiency of the DPC++ runtime that fades as 1/t —
    /// the cause of the super-linear start of Fig. 1's DPC++ curve.
    pub dpcpp_serial_beta: f64,
    /// Slowdown of plain DPC++ (no NUMA pinning) from remote-socket
    /// traffic and lost cache locality.
    pub dpcpp_remote_factor: f64,
}

impl Default for CpuCalibration {
    fn default() -> CpuCalibration {
        CpuCalibration {
            socket_bw_eff: 0.643,
            per_core_bw: 6.1e9,
            soa_stream_eff: 0.88,
            vec_eff: 0.073,
            aos_gather_eff_f32: 0.75,
            aos_gather_eff_f64: 0.9,
            dpcpp_numa_factor: 1.05,
            dpcpp_serial_beta: 0.15,
            dpcpp_remote_factor: 1.5,
        }
    }
}

/// The CPU performance model (Table 2, Fig. 1).
///
/// # Example
///
/// ```
/// use pic_particles::Layout;
/// use pic_perfmodel::{CpuModel, Parallelization, Precision, Scenario};
///
/// let model = CpuModel::endeavour();
/// let omp = model.nsps(Scenario::Precalculated, Layout::Aos, Precision::F32,
///                      Parallelization::OpenMp, 48);
/// // Paper Table 2 reports 0.53 NSPS for this cell.
/// assert!((omp - 0.53).abs() / 0.53 < 0.3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Hardware parameters (Table 1).
    pub spec: CpuSpec,
    /// Calibration constants.
    pub cal: CpuCalibration,
}

impl CpuModel {
    /// The paper's Endeavour node with default calibration.
    pub fn endeavour() -> CpuModel {
        CpuModel {
            spec: CpuSpec::xeon_8260l_x2(),
            cal: CpuCalibration::default(),
        }
    }

    /// Achievable DRAM bandwidth with `threads` workers placed compactly
    /// (socket 0 fills first), B/s.
    pub fn bandwidth_at(&self, threads: usize, layout: Layout) -> f64 {
        let mut remaining = threads.min(self.spec.total_cores());
        let mut bw = 0.0;
        for _ in 0..self.spec.sockets {
            let cores = remaining.min(self.spec.cores_per_socket);
            remaining -= cores;
            let socket_cap = self.spec.bw_per_socket * self.cal.socket_bw_eff;
            bw += (cores as f64 * self.cal.per_core_bw).min(socket_cap);
        }
        match layout {
            Layout::Aos => bw,
            Layout::Soa => bw * self.cal.soa_stream_eff,
        }
    }

    /// Achieved flop-equivalent throughput with `threads` workers, flop/s.
    pub fn flop_rate_at(&self, threads: usize, layout: Layout, precision: Precision) -> f64 {
        let t = threads.min(self.spec.total_cores());
        let lanes = match precision {
            Precision::F32 => self.spec.simd_f32,
            Precision::F64 => self.spec.simd_f32 / 2,
        };
        let layout_eff = match (layout, precision) {
            (Layout::Soa, _) => 1.0,
            (Layout::Aos, Precision::F32) => self.cal.aos_gather_eff_f32,
            (Layout::Aos, Precision::F64) => self.cal.aos_gather_eff_f64,
        };
        t as f64
            * self.spec.clock_at(t)
            * 2.0
            * self.spec.fma_units as f64
            * lanes as f64
            * self.cal.vec_eff
            * layout_eff
    }

    /// Modeled NSPS (ns per particle per step) for one Table-2 cell at a
    /// given thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn nsps(
        &self,
        scenario: Scenario,
        layout: Layout,
        precision: Precision,
        par: Parallelization,
        threads: usize,
    ) -> f64 {
        assert!(threads > 0, "nsps: zero threads");
        let cost = KernelCost::boris(scenario, layout, precision);
        let mem_ns = cost.bytes_total() / self.bandwidth_at(threads, layout) * 1e9;
        let comp_ns = cost.flops / self.flop_rate_at(threads, layout, precision) * 1e9;
        let base = mem_ns.max(comp_ns);
        match par {
            Parallelization::OpenMp => base,
            Parallelization::DpcppNuma => {
                base * self.cal.dpcpp_numa_factor
                    * (1.0 + self.cal.dpcpp_serial_beta / threads as f64)
            }
            Parallelization::Dpcpp => {
                base * self.cal.dpcpp_numa_factor
                    * (1.0 + self.cal.dpcpp_serial_beta / threads as f64)
                    * self.cal.dpcpp_remote_factor
            }
        }
    }

    /// Throughput gain of running two hyper-threads per core on this
    /// memory-bound kernel. The paper found "employing 96 threads is
    /// empirically the best" on the 48-core node: SMT overlaps memory
    /// stalls, worth a few percent when bandwidth-bound.
    pub fn smt_gain(&self) -> f64 {
        1.08
    }

    /// NSPS with two hyper-threads per core (the paper's best OpenMP
    /// configuration): the core-count roofline divided by the SMT gain.
    pub fn nsps_smt(
        &self,
        scenario: Scenario,
        layout: Layout,
        precision: Precision,
        par: Parallelization,
        cores: usize,
    ) -> f64 {
        self.nsps(scenario, layout, precision, par, cores) / self.smt_gain()
    }

    /// Full-machine NSPS (all 48 cores) — the Table 2 cell.
    pub fn table2_cell(
        &self,
        scenario: Scenario,
        layout: Layout,
        precision: Precision,
        par: Parallelization,
    ) -> f64 {
        self.nsps(scenario, layout, precision, par, self.spec.total_cores())
    }

    /// Strong-scaling speedup S(t) = NSPS(1)/NSPS(t) for t = 1..=cores —
    /// the Fig. 1 curves.
    pub fn speedup_curve(
        &self,
        scenario: Scenario,
        layout: Layout,
        precision: Precision,
        par: Parallelization,
    ) -> Vec<f64> {
        let base = self.nsps(scenario, layout, precision, par, 1);
        (1..=self.spec.total_cores())
            .map(|t| base / self.nsps(scenario, layout, precision, par, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 0.30;

    /// Paper Table 2, in (layout, parallelization) → [P f32, P f64, A f32,
    /// A f64] order.
    fn paper_table2() -> Vec<(Layout, Parallelization, [f64; 4])> {
        use Layout::*;
        use Parallelization::*;
        vec![
            (Aos, OpenMp, [0.53, 0.98, 0.58, 0.84]),
            (Aos, Dpcpp, [0.78, 1.54, 1.02, 1.48]),
            (Aos, DpcppNuma, [0.54, 0.99, 0.54, 0.89]),
            (Soa, OpenMp, [0.50, 1.06, 0.43, 0.76]),
            (Soa, Dpcpp, [0.85, 1.49, 0.77, 1.31]),
            (Soa, DpcppNuma, [0.58, 1.20, 0.60, 0.90]),
        ]
    }

    #[test]
    fn every_table2_cell_within_band() {
        let m = CpuModel::endeavour();
        for (layout, par, vals) in paper_table2() {
            let configs = [
                (Scenario::Precalculated, Precision::F32, vals[0]),
                (Scenario::Precalculated, Precision::F64, vals[1]),
                (Scenario::Analytical, Precision::F32, vals[2]),
                (Scenario::Analytical, Precision::F64, vals[3]),
            ];
            for (scenario, prec, paper) in configs {
                let model = m.table2_cell(scenario, layout, prec, par);
                let rel = (model - paper).abs() / paper;
                assert!(
                    rel < TOL,
                    "{layout} {par} {scenario} {prec}: model {model:.3} vs paper {paper} \
                     ({:+.0}%)",
                    100.0 * (model - paper) / paper
                );
            }
        }
    }

    #[test]
    fn qualitative_orderings_of_table2() {
        let m = CpuModel::endeavour();
        for scenario in Scenario::all() {
            for layout in [Layout::Aos, Layout::Soa] {
                for prec in [Precision::F32, Precision::F64] {
                    let omp = m.table2_cell(scenario, layout, prec, Parallelization::OpenMp);
                    let plain = m.table2_cell(scenario, layout, prec, Parallelization::Dpcpp);
                    let numa = m.table2_cell(scenario, layout, prec, Parallelization::DpcppNuma);
                    // Conclusion 1: NUMA pinning matters a lot for DPC++.
                    assert!(plain > 1.3 * numa, "{scenario} {layout} {prec}");
                    // Conclusion 2: DPC++ NUMA within ~15% of OpenMP.
                    assert!(numa < 1.15 * omp && numa > 0.85 * omp);
                }
            }
        }
    }

    #[test]
    fn double_costs_roughly_twice_float_in_precalculated() {
        // Conclusion 4: memory-bound scenario scales with the data size.
        let m = CpuModel::endeavour();
        for layout in [Layout::Aos, Layout::Soa] {
            let f = m.table2_cell(
                Scenario::Precalculated,
                layout,
                Precision::F32,
                Parallelization::OpenMp,
            );
            let d = m.table2_cell(
                Scenario::Precalculated,
                layout,
                Precision::F64,
                Parallelization::OpenMp,
            );
            let ratio = d / f;
            assert!((1.8..2.2).contains(&ratio), "ratio = {ratio}");
        }
    }

    #[test]
    fn analytical_double_is_cheaper_than_precalculated_double() {
        // Conclusion 5: "in double precision, the scenario with analytical
        // computations runs a little faster".
        let m = CpuModel::endeavour();
        for par in Parallelization::all() {
            for layout in [Layout::Aos, Layout::Soa] {
                let pre = m.table2_cell(Scenario::Precalculated, layout, Precision::F64, par);
                let ana = m.table2_cell(Scenario::Analytical, layout, Precision::F64, par);
                assert!(ana < pre, "{par} {layout}: {ana} !< {pre}");
            }
        }
    }

    #[test]
    fn aos_soa_close_on_cpu() {
        // Conclusion 3: layout has almost no effect on CPU — within ~35%.
        let m = CpuModel::endeavour();
        for scenario in Scenario::all() {
            for prec in [Precision::F32, Precision::F64] {
                let aos = m.table2_cell(scenario, Layout::Aos, prec, Parallelization::OpenMp);
                let soa = m.table2_cell(scenario, Layout::Soa, prec, Parallelization::OpenMp);
                let ratio = aos / soa;
                assert!((0.65..1.55).contains(&ratio), "{scenario} {prec}: {ratio}");
            }
        }
    }

    #[test]
    fn fig1_openmp_shape() {
        let m = CpuModel::endeavour();
        let s = m.speedup_curve(
            Scenario::Precalculated,
            Layout::Aos,
            Precision::F32,
            Parallelization::OpenMp,
        );
        // Near-linear at the start.
        assert!((s[1] - 2.0).abs() < 0.2, "S(2) = {}", s[1]);
        assert!(s[3] > 3.5, "S(4) = {}", s[3]);
        // Socket-0 bandwidth saturates before 24 cores: plateau.
        assert!(s[23] < 16.0, "S(24) = {}", s[23]);
        // Second socket resumes the scaling.
        assert!(
            s[47] > 1.7 * s[23],
            "S(48) = {} vs S(24) = {}",
            s[47],
            s[23]
        );
        // Overall speedup lands in the paper's ~60% efficiency region.
        assert!((24.0..38.0).contains(&s[47]), "S(48) = {}", s[47]);
        // Monotone non-decreasing.
        for w in s.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    fn fig1_dpcpp_numa_is_superlinear_at_first() {
        let m = CpuModel::endeavour();
        let s = m.speedup_curve(
            Scenario::Precalculated,
            Layout::Aos,
            Precision::F32,
            Parallelization::DpcppNuma,
        );
        // Super-linear acceleration at the beginning (paper §5.3): the
        // 1-core DPC++ baseline is slow.
        assert!(s[1] > 2.0, "S(2) = {}", s[1]);
        assert!(s[3] > 4.0, "S(4) = {}", s[3]);
        // ~63% strong-scaling efficiency at 48 cores.
        let eff = s[47] / 48.0;
        assert!((0.5..0.8).contains(&eff), "eff(48) = {eff}");
    }

    #[test]
    fn dpcpp_numa_and_openmp_absolute_times_converge() {
        // Paper: "the overall run times for OpenMP and DPC++ NUMA versions
        // are close to each other" at full core count.
        let m = CpuModel::endeavour();
        let omp = m.nsps(
            Scenario::Precalculated,
            Layout::Aos,
            Precision::F32,
            Parallelization::OpenMp,
            48,
        );
        let numa = m.nsps(
            Scenario::Precalculated,
            Layout::Aos,
            Precision::F32,
            Parallelization::DpcppNuma,
            48,
        );
        assert!((numa / omp - 1.0).abs() < 0.12, "ratio = {}", numa / omp);
    }

    #[test]
    fn bandwidth_saturates_per_socket() {
        let m = CpuModel::endeavour();
        let b1 = m.bandwidth_at(1, Layout::Aos);
        let b24 = m.bandwidth_at(24, Layout::Aos);
        let b48 = m.bandwidth_at(48, Layout::Aos);
        assert!((b1 - 6.1e9).abs() < 1e6);
        // One socket caps below 24 × per-core.
        assert!(b24 < 24.0 * 6.1e9);
        assert!((b48 - 2.0 * b24).abs() / b48 < 1e-12);
        // More threads than cores do not add bandwidth.
        assert_eq!(m.bandwidth_at(96, Layout::Aos), b48);
    }

    #[test]
    fn smt_helps_but_modestly() {
        // Paper §5.3: hyper-threading (96 threads on 48 cores) improves
        // performance — by a single-digit percentage, not a doubling.
        let m = CpuModel::endeavour();
        let plain = m.nsps(
            Scenario::Precalculated,
            Layout::Aos,
            Precision::F32,
            Parallelization::OpenMp,
            48,
        );
        let smt = m.nsps_smt(
            Scenario::Precalculated,
            Layout::Aos,
            Precision::F32,
            Parallelization::OpenMp,
            48,
        );
        assert!(smt < plain);
        assert!(smt > 0.85 * plain);
    }

    #[test]
    #[should_panic(expected = "zero threads")]
    fn zero_threads_panics() {
        let m = CpuModel::endeavour();
        let _ = m.nsps(
            Scenario::Analytical,
            Layout::Aos,
            Precision::F32,
            Parallelization::OpenMp,
            0,
        );
    }
}

//! Hardware parameters of the paper's Table 1, as data.

/// CPU platform parameters (paper Table 1, first column).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Number of sockets (NUMA domains).
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Base clock, Hz.
    pub base_clock: f64,
    /// Single-core boost clock, Hz.
    pub boost_clock: f64,
    /// FP32 SIMD lanes per FMA unit (AVX-512: 16).
    pub simd_f32: usize,
    /// FMA units per core issuing one fused multiply-add per cycle each.
    pub fma_units: usize,
    /// Theoretical DRAM bandwidth per socket, B/s.
    pub bw_per_socket: f64,
}

impl CpuSpec {
    /// 2× Intel Xeon Platinum 8260L, 48 cores, 192 GB DDR4 — the paper's
    /// Endeavour node.
    pub fn xeon_8260l_x2() -> CpuSpec {
        CpuSpec {
            name: "2x Xeon Platinum 8260L",
            sockets: 2,
            cores_per_socket: 24,
            base_clock: 2.4e9,
            boost_clock: 3.9e9,
            simd_f32: 16,
            fma_units: 2,
            // 6 channels × DDR4-2933 × 8 B.
            bw_per_socket: 140.8e9,
        }
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Peak FP32 throughput at base clock, flop/s
    /// (2 flops per FMA × lanes × units × cores × clock).
    pub fn peak_flops_f32(&self) -> f64 {
        2.0 * self.simd_f32 as f64
            * self.fma_units as f64
            * self.total_cores() as f64
            * self.base_clock
    }

    /// Peak FP64 throughput at base clock, flop/s (half the FP32 lanes).
    pub fn peak_flops_f64(&self) -> f64 {
        self.peak_flops_f32() / 2.0
    }

    /// Clock at a given active-core count: boost for one core, sliding
    /// linearly to base when all cores are busy.
    pub fn clock_at(&self, active_cores: usize) -> f64 {
        let n = self.total_cores().max(2);
        let frac = (active_cores.saturating_sub(1)) as f64 / (n - 1) as f64;
        self.boost_clock + (self.base_clock - self.boost_clock) * frac.min(1.0)
    }
}

/// GPU parameters (paper Table 1, last two columns).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Execution units.
    pub execution_units: usize,
    /// Base clock, Hz.
    pub base_clock: f64,
    /// Boost clock, Hz.
    pub boost_clock: f64,
    /// Peak FP32 throughput, flop/s (paper Table 1 "Peak performance").
    pub peak_flops_f32: f64,
    /// Memory bandwidth available to the GPU, B/s.
    pub mem_bandwidth: f64,
    /// `true` when FP64 runs in emulation only (Iris Xe Max; paper §5.3
    /// presents GPU results in single precision for this reason).
    pub fp64_emulated: bool,
}

impl GpuSpec {
    /// Intel UHD Graphics P630: 24 EUs, integrated, shares dual-channel
    /// DDR4 with the host (~42 GB/s).
    pub fn uhd_p630() -> GpuSpec {
        GpuSpec {
            name: "P630",
            execution_units: 24,
            base_clock: 0.35e9,
            boost_clock: 1.15e9,
            peak_flops_f32: 0.441e12,
            mem_bandwidth: 41.6e9,
            fp64_emulated: false,
        }
    }

    /// Intel Iris Xe Max: 96 EUs, 4 GB dedicated LPDDR4X (~68 GB/s);
    /// FP64 only in emulation.
    pub fn iris_xe_max() -> GpuSpec {
        GpuSpec {
            name: "Iris Xe Max",
            execution_units: 96,
            base_clock: 0.3e9,
            boost_clock: 1.65e9,
            peak_flops_f32: 2.5e12,
            mem_bandwidth: 68.3e9,
            fp64_emulated: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_matches_table1() {
        let c = CpuSpec::xeon_8260l_x2();
        assert_eq!(c.total_cores(), 48);
        assert_eq!(c.base_clock, 2.4e9);
        assert_eq!(c.boost_clock, 3.9e9);
        // Table 1 quotes 3.6 TFlops single precision per 2 sockets — the
        // peak at a sustained all-core AVX-512 clock; our base-clock
        // figure brackets it.
        let peak = c.peak_flops_f32();
        assert!((3.0e12..9.0e12).contains(&peak), "peak = {peak:.3e}");
    }

    #[test]
    fn clock_interpolates_boost_to_base() {
        let c = CpuSpec::xeon_8260l_x2();
        assert_eq!(c.clock_at(1), 3.9e9);
        assert_eq!(c.clock_at(48), 2.4e9);
        let mid = c.clock_at(24);
        assert!(mid < 3.9e9 && mid > 2.4e9);
    }

    #[test]
    fn gpu_peaks_match_table1() {
        assert_eq!(GpuSpec::uhd_p630().peak_flops_f32, 0.441e12);
        assert_eq!(GpuSpec::iris_xe_max().peak_flops_f32, 2.5e12);
        assert_eq!(GpuSpec::uhd_p630().execution_units, 24);
        assert_eq!(GpuSpec::iris_xe_max().execution_units, 96);
        assert!(GpuSpec::iris_xe_max().fp64_emulated);
    }

    #[test]
    fn iris_is_faster_but_smaller_memory_pool() {
        let p = GpuSpec::uhd_p630();
        let i = GpuSpec::iris_xe_max();
        assert!(i.peak_flops_f32 > p.peak_flops_f32);
        assert!(i.mem_bandwidth > p.mem_bandwidth);
    }
}

//! Calibration sensitivity analysis.
//!
//! The CPU model reproduces 24 published cells from nine efficiency
//! constants. A fair question: is that genuine modeling or nine free knobs
//! overfitting 24 numbers? This module answers it quantitatively — each
//! knob is perturbed individually and the aggregate fidelity re-evaluated.
//! The tests assert that (a) the default calibration is near-optimal under
//! single-knob perturbations, (b) the knob physical reasoning says must
//! dominate a memory-bound Table 2 — the socket bandwidth efficiency —
//! indeed ranks first, and (c) the two knobs that barely move Table 2
//! (per-core bandwidth, serial β) are exactly the ones that control
//! Fig. 1, where they do move the curve. No dead parameters, no slack.

use crate::cpu::{CpuCalibration, CpuModel};
use crate::report::{fidelity, table2_cells};

/// The perturbable calibration constants.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum Knob {
    /// Fraction of theoretical socket bandwidth achieved.
    SocketBwEff,
    /// Single-core achievable bandwidth.
    PerCoreBw,
    /// SoA multi-stream penalty.
    SoaStreamEff,
    /// Achieved fraction of peak flops.
    VecEff,
    /// AoS gather penalty, f32.
    AosGatherF32,
    /// AoS gather penalty, f64.
    AosGatherF64,
    /// Residual DPC++ NUMA overhead.
    DpcppNumaFactor,
    /// DPC++ serial inefficiency (1/t term).
    DpcppSerialBeta,
    /// Plain-DPC++ remote-traffic slowdown.
    DpcppRemoteFactor,
}

impl Knob {
    /// All knobs.
    pub fn all() -> [Knob; 9] {
        [
            Knob::SocketBwEff,
            Knob::PerCoreBw,
            Knob::SoaStreamEff,
            Knob::VecEff,
            Knob::AosGatherF32,
            Knob::AosGatherF64,
            Knob::DpcppNumaFactor,
            Knob::DpcppSerialBeta,
            Knob::DpcppRemoteFactor,
        ]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Knob::SocketBwEff => "socket_bw_eff",
            Knob::PerCoreBw => "per_core_bw",
            Knob::SoaStreamEff => "soa_stream_eff",
            Knob::VecEff => "vec_eff",
            Knob::AosGatherF32 => "aos_gather_eff_f32",
            Knob::AosGatherF64 => "aos_gather_eff_f64",
            Knob::DpcppNumaFactor => "dpcpp_numa_factor",
            Knob::DpcppSerialBeta => "dpcpp_serial_beta",
            Knob::DpcppRemoteFactor => "dpcpp_remote_factor",
        }
    }

    /// Returns a calibration with this knob multiplied by `factor`.
    pub fn scaled(self, base: CpuCalibration, factor: f64) -> CpuCalibration {
        let mut c = base;
        match self {
            Knob::SocketBwEff => c.socket_bw_eff *= factor,
            Knob::PerCoreBw => c.per_core_bw *= factor,
            Knob::SoaStreamEff => c.soa_stream_eff *= factor,
            Knob::VecEff => c.vec_eff *= factor,
            Knob::AosGatherF32 => c.aos_gather_eff_f32 *= factor,
            Knob::AosGatherF64 => c.aos_gather_eff_f64 *= factor,
            Knob::DpcppNumaFactor => c.dpcpp_numa_factor *= factor,
            Knob::DpcppSerialBeta => c.dpcpp_serial_beta *= factor,
            Knob::DpcppRemoteFactor => c.dpcpp_remote_factor *= factor,
        }
        c
    }
}

/// Mean |deviation| of Table 2 under a given calibration.
pub fn table2_fidelity(cal: CpuCalibration) -> f64 {
    let model = CpuModel {
        spec: crate::specs::CpuSpec::xeon_8260l_x2(),
        cal,
    };
    fidelity(&table2_cells(&model)).mean_abs_deviation
}

/// Sensitivity of one knob: the *increase* in mean |deviation| when the
/// knob is scaled by `factor` (negative would mean the perturbation
/// improves the fit).
pub fn knob_sensitivity(knob: Knob, factor: f64) -> f64 {
    let base = table2_fidelity(CpuCalibration::default());
    table2_fidelity(knob.scaled(CpuCalibration::default(), factor)) - base
}

/// Full sensitivity table for ±`delta` relative perturbations, sorted by
/// impact (worst direction per knob, descending).
pub fn sensitivity_ranking(delta: f64) -> Vec<(Knob, f64)> {
    let mut out: Vec<(Knob, f64)> = Knob::all()
        .into_iter()
        .map(|k| {
            let up = knob_sensitivity(k, 1.0 + delta);
            let down = knob_sensitivity(k, 1.0 - delta);
            (k, up.max(down))
        })
        .collect();
    // lint: allow(unwrap-in-lib): sensitivities are ratios of finite
    // model outputs; NaN would indicate a bug worth the panic.
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite sensitivities"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_is_near_optimal() {
        // No single ±40% knob change may improve the fit by more than one
        // percentage point of mean deviation — i.e. the constants are not
        // arbitrary slack soaking up error.
        let base = table2_fidelity(CpuCalibration::default());
        for knob in Knob::all() {
            for factor in [0.6, 1.4] {
                let perturbed = table2_fidelity(knob.scaled(CpuCalibration::default(), factor));
                assert!(
                    perturbed > base - 0.01,
                    "{} × {factor} improves fit: {perturbed:.4} vs {base:.4}",
                    knob.name()
                );
            }
        }
    }

    #[test]
    fn physically_dominant_knobs_rank_highest() {
        // The kernel is memory-bound: socket bandwidth must be the single
        // most sensitive constant for Table 2, and the two scaling-only
        // knobs (per-core bandwidth, the serial-inefficiency β) the least —
        // Table 2 is measured at 48 cores where neither binds.
        let ranking = sensitivity_ranking(0.4);
        assert_eq!(ranking[0].0.name(), "socket_bw_eff", "{ranking:?}");
        let tail: Vec<&str> = ranking
            .iter()
            .rev()
            .take(2)
            .map(|(k, _)| k.name())
            .collect();
        assert!(tail.contains(&"per_core_bw"), "{ranking:?}");
        assert!(tail.contains(&"dpcpp_serial_beta"), "{ranking:?}");
    }

    #[test]
    fn every_knob_matters_somewhere() {
        // Seven knobs move Table 2; the other two exist for Fig. 1 and
        // must move *it*: per_core_bw sets the 1-core NSPS, the serial β
        // sets the super-linearity of the DPC++ curve.
        use crate::cost::{Precision, Scenario};
        use crate::cpu::Parallelization;
        use pic_particles::Layout;

        for (knob, worst) in sensitivity_ranking(0.4) {
            if matches!(knob, Knob::PerCoreBw | Knob::DpcppSerialBeta) {
                continue; // checked below against Fig. 1
            }
            assert!(
                worst > 0.005,
                "{} appears to be a dead knob for Table 2 (Δ = {worst:.4})",
                knob.name()
            );
        }

        let fig1_metric = |cal: CpuCalibration| -> (f64, f64) {
            let m = CpuModel {
                spec: crate::specs::CpuSpec::xeon_8260l_x2(),
                cal,
            };
            let one_core = m.nsps(
                Scenario::Precalculated,
                Layout::Aos,
                Precision::F32,
                Parallelization::OpenMp,
                1,
            );
            let s = m.speedup_curve(
                Scenario::Precalculated,
                Layout::Aos,
                Precision::F32,
                Parallelization::DpcppNuma,
            );
            (one_core, s[1])
        };
        let (base_t1, base_s2) = fig1_metric(CpuCalibration::default());
        let (t1, _) = fig1_metric(Knob::PerCoreBw.scaled(CpuCalibration::default(), 1.4));
        assert!(
            (t1 - base_t1).abs() / base_t1 > 0.2,
            "per_core_bw does not move the 1-core time"
        );
        let (_, s2) = fig1_metric(Knob::DpcppSerialBeta.scaled(CpuCalibration::default(), 2.0));
        assert!(
            (s2 - base_s2).abs() > 0.02,
            "serial β does not move the super-linearity: {s2} vs {base_s2}"
        );
    }

    #[test]
    fn sensitivity_is_monotone_in_perturbation_size() {
        for knob in [Knob::SocketBwEff, Knob::VecEff, Knob::DpcppRemoteFactor] {
            let small = knob_sensitivity(knob, 1.2);
            let large = knob_sensitivity(knob, 1.5);
            assert!(
                large >= small - 1e-12,
                "{}: Δ(1.5) = {large:.4} < Δ(1.2) = {small:.4}",
                knob.name()
            );
        }
    }
}

//! The reproduction report: every modeled cell next to its published
//! value, as data.
//!
//! The bench targets print these tables; tests assert aggregate fidelity
//! (mean absolute deviation, worst cell); downstream code can query any
//! cell programmatically instead of re-parsing bench output.

use crate::cost::{Precision, Scenario};
use crate::cpu::{CpuModel, Parallelization};
use crate::gpu::GpuModel;
use pic_particles::Layout;

/// One modeled-vs-published cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Human-readable cell label, e.g. `"AoS/OpenMP/Precalculated/float"`.
    pub label: String,
    /// Modeled NSPS.
    pub modeled: f64,
    /// Published NSPS.
    pub paper: f64,
}

impl Cell {
    /// Signed relative deviation `(modeled − paper)/paper`.
    pub fn deviation(&self) -> f64 {
        (self.modeled - self.paper) / self.paper
    }
}

/// The paper's published Table 2, row-major
/// (layout, parallelization) → [P f32, P f64, A f32, A f64].
pub const PAPER_TABLE2: [(Layout, Parallelization, [f64; 4]); 6] = [
    (
        Layout::Aos,
        Parallelization::OpenMp,
        [0.53, 0.98, 0.58, 0.84],
    ),
    (
        Layout::Aos,
        Parallelization::Dpcpp,
        [0.78, 1.54, 1.02, 1.48],
    ),
    (
        Layout::Aos,
        Parallelization::DpcppNuma,
        [0.54, 0.99, 0.54, 0.89],
    ),
    (
        Layout::Soa,
        Parallelization::OpenMp,
        [0.50, 1.06, 0.43, 0.76],
    ),
    (
        Layout::Soa,
        Parallelization::Dpcpp,
        [0.85, 1.49, 0.77, 1.31],
    ),
    (
        Layout::Soa,
        Parallelization::DpcppNuma,
        [0.58, 1.20, 0.60, 0.90],
    ),
];

/// The paper's published Table 3 (single precision):
/// (scenario, layout) → [CPU, P630, Iris Xe Max].
pub const PAPER_TABLE3: [(Scenario, Layout, [f64; 3]); 4] = [
    (Scenario::Precalculated, Layout::Aos, [0.54, 4.76, 2.10]),
    (Scenario::Precalculated, Layout::Soa, [0.58, 2.43, 1.42]),
    (Scenario::Analytical, Layout::Aos, [0.54, 4.45, 2.10]),
    (Scenario::Analytical, Layout::Soa, [0.60, 1.93, 1.00]),
];

/// Computes every Table 2 cell from the CPU model.
pub fn table2_cells(model: &CpuModel) -> Vec<Cell> {
    let mut out = Vec::with_capacity(24);
    for (layout, par, vals) in PAPER_TABLE2 {
        let configs = [
            (Scenario::Precalculated, Precision::F32, vals[0]),
            (Scenario::Precalculated, Precision::F64, vals[1]),
            (Scenario::Analytical, Precision::F32, vals[2]),
            (Scenario::Analytical, Precision::F64, vals[3]),
        ];
        for (scenario, prec, paper) in configs {
            out.push(Cell {
                label: format!("{layout}/{par}/{scenario}/{prec}"),
                modeled: model.table2_cell(scenario, layout, prec, par),
                paper,
            });
        }
    }
    out
}

/// Computes every Table 3 cell (CPU column from the CPU model's DPC++ NUMA
/// row, GPU columns from the device models).
pub fn table3_cells(cpu: &CpuModel, p630: &GpuModel, iris: &GpuModel) -> Vec<Cell> {
    let mut out = Vec::with_capacity(12);
    for (scenario, layout, vals) in PAPER_TABLE3 {
        out.push(Cell {
            label: format!("T3 CPU/{scenario}/{layout}"),
            modeled: cpu.table2_cell(scenario, layout, Precision::F32, Parallelization::DpcppNuma),
            paper: vals[0],
        });
        out.push(Cell {
            label: format!("T3 P630/{scenario}/{layout}"),
            modeled: p630.nsps_f32(scenario, layout),
            paper: vals[1],
        });
        out.push(Cell {
            label: format!("T3 Iris/{scenario}/{layout}"),
            modeled: iris.nsps_f32(scenario, layout),
            paper: vals[2],
        });
    }
    out
}

/// Aggregate fidelity of a cell set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fidelity {
    /// Mean |deviation| across cells.
    pub mean_abs_deviation: f64,
    /// Worst |deviation|.
    pub worst_abs_deviation: f64,
    /// Number of cells.
    pub cells: usize,
}

/// Summarizes a cell set.
///
/// # Panics
///
/// Panics if `cells` is empty.
pub fn fidelity(cells: &[Cell]) -> Fidelity {
    assert!(!cells.is_empty(), "fidelity: no cells");
    let devs: Vec<f64> = cells.iter().map(|c| c.deviation().abs()).collect();
    Fidelity {
        mean_abs_deviation: devs.iter().sum::<f64>() / devs.len() as f64,
        worst_abs_deviation: devs.iter().cloned().fold(0.0, f64::max),
        cells: cells.len(),
    }
}

/// The full default reproduction report (both tables, default models).
pub fn default_report() -> Vec<Cell> {
    let cpu = CpuModel::endeavour();
    let mut cells = table2_cells(&cpu);
    cells.extend(table3_cells(
        &cpu,
        &GpuModel::p630(),
        &GpuModel::iris_xe_max(),
    ));
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_cells() {
        let cells = default_report();
        assert_eq!(cells.len(), 24 + 12);
        // Labels are unique.
        let mut labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 36);
    }

    #[test]
    fn aggregate_fidelity_is_tight() {
        // The headline number of the whole reproduction: across all 36
        // published cells, one calibration lands within 11% on average and
        // 25% worst-case.
        let f = fidelity(&default_report());
        assert!(
            f.mean_abs_deviation < 0.12,
            "mean |dev| = {:.3}",
            f.mean_abs_deviation
        );
        assert!(
            f.worst_abs_deviation < 0.30,
            "worst |dev| = {:.3}",
            f.worst_abs_deviation
        );
        assert_eq!(f.cells, 36);
    }

    #[test]
    fn table2_fidelity_alone() {
        let f = fidelity(&table2_cells(&CpuModel::endeavour()));
        assert_eq!(f.cells, 24);
        assert!(f.mean_abs_deviation < 0.12);
    }

    #[test]
    fn deviation_signs_are_meaningful() {
        let c = Cell {
            label: "x".into(),
            modeled: 1.1,
            paper: 1.0,
        };
        assert!((c.deviation() - 0.1).abs() < 1e-12);
        let c2 = Cell {
            label: "y".into(),
            modeled: 0.9,
            paper: 1.0,
        };
        assert!(c2.deviation() < 0.0);
    }

    #[test]
    #[should_panic(expected = "no cells")]
    fn empty_fidelity_panics() {
        let _ = fidelity(&[]);
    }
}

//! Roofline + coalescing model of the Intel GPUs (Table 3, §5.3).
//!
//! The paper's GPU story has two ingredients the model captures:
//!
//! 1. **Layout matters on GPUs**: SoA accesses coalesce into full memory
//!    transactions; AoS strides by the 36-byte record, wasting a large part
//!    of every cache line. Modeled as a per-device coalescing efficiency
//!    for AoS.
//! 2. **Throughput tracks Table 1 ratios**: the devices are slower than
//!    2×Xeon roughly by their bandwidth/peak-performance deficit, not by
//!    orders of magnitude — "reasonable performance without additional
//!    work" (paper conclusion).
//!
//! It also models the first-launch JIT compilation penalty (paper §5.3:
//! the first iteration runs ~50 % longer).

use crate::cost::{KernelCost, Precision, Scenario};
use crate::specs::GpuSpec;
use pic_particles::Layout;

/// Calibration constants for the GPU roofline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuCalibration {
    /// Fraction of theoretical memory bandwidth achieved on streaming
    /// access.
    pub mem_eff: f64,
    /// Fraction of peak FP32 throughput achieved on this
    /// transcendental-heavy kernel.
    pub comp_eff: f64,
    /// Effective fraction of a memory transaction that is useful when the
    /// AoS record stride defeats coalescing.
    pub aos_coalesce_eff: f64,
    /// FP64-emulation slowdown of the compute path (Iris Xe Max).
    pub fp64_emulation_slowdown: f64,
    /// First kernel launch: JIT translation of the intermediate
    /// representation + cold caches (paper: first iteration ≈ 1.5×).
    pub first_iteration_factor: f64,
}

/// The GPU performance model (Table 3).
///
/// # Example
///
/// ```
/// use pic_particles::Layout;
/// use pic_perfmodel::{GpuModel, Scenario};
///
/// let p630 = GpuModel::p630();
/// let aos = p630.nsps_f32(Scenario::Precalculated, Layout::Aos);
/// let soa = p630.nsps_f32(Scenario::Precalculated, Layout::Soa);
/// // On the GPU the layout choice is decisive (paper Table 3).
/// assert!(aos > 1.5 * soa);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuModel {
    /// Hardware parameters (Table 1).
    pub spec: GpuSpec,
    /// Calibration constants.
    pub cal: GpuCalibration,
}

impl GpuModel {
    /// Intel UHD P630 with its calibration (integrated; host-shared DDR4
    /// makes coalescing misses expensive).
    pub fn p630() -> GpuModel {
        GpuModel {
            spec: GpuSpec::uhd_p630(),
            cal: GpuCalibration {
                mem_eff: 0.8,
                comp_eff: 0.27,
                aos_coalesce_eff: 0.52,
                fp64_emulation_slowdown: 8.0,
                first_iteration_factor: 1.5,
            },
        }
    }

    /// Intel Iris Xe Max with its calibration (Xe-LP caches absorb part of
    /// the AoS stride penalty).
    pub fn iris_xe_max() -> GpuModel {
        GpuModel {
            spec: GpuSpec::iris_xe_max(),
            cal: GpuCalibration {
                mem_eff: 0.8,
                comp_eff: 0.27,
                aos_coalesce_eff: 0.68,
                fp64_emulation_slowdown: 16.0,
                first_iteration_factor: 1.5,
            },
        }
    }

    /// Both paper GPUs, in Table 3 column order.
    pub fn paper_devices() -> [GpuModel; 2] {
        [GpuModel::p630(), GpuModel::iris_xe_max()]
    }

    /// Modeled NSPS in single precision — the Table 3 cells.
    pub fn nsps_f32(&self, scenario: Scenario, layout: Layout) -> f64 {
        self.nsps(scenario, layout, Precision::F32)
    }

    /// Modeled NSPS for an arbitrary precision. Double precision on an
    /// FP64-emulating device (`spec.fp64_emulated`) pays the emulation
    /// slowdown on the compute path — the reason the paper reports GPU
    /// results in single precision only.
    pub fn nsps(&self, scenario: Scenario, layout: Layout, precision: Precision) -> f64 {
        let cost = KernelCost::boris(scenario, layout, precision);
        let coalesce = match layout {
            Layout::Soa => 1.0,
            Layout::Aos => self.cal.aos_coalesce_eff,
        };
        let bw = self.spec.mem_bandwidth * self.cal.mem_eff * coalesce;
        let mem_ns = cost.bytes_total() / bw * 1e9;

        let mut rate = self.spec.peak_flops_f32 * self.cal.comp_eff;
        if precision == Precision::F64 {
            rate /= if self.spec.fp64_emulated {
                self.cal.fp64_emulation_slowdown
            } else {
                2.0
            };
        }
        let comp_ns = cost.flops / rate * 1e9;
        mem_ns.max(comp_ns)
    }

    /// Modeled per-iteration times (ns per particle per step) for a run of
    /// `iterations` sweeps: the first pays the JIT + cold-memory factor
    /// (paper §5.3), the rest are steady-state.
    pub fn iteration_profile(
        &self,
        scenario: Scenario,
        layout: Layout,
        iterations: usize,
    ) -> Vec<f64> {
        let steady = self.nsps_f32(scenario, layout);
        (0..iterations)
            .map(|i| {
                if i == 0 {
                    steady * self.cal.first_iteration_factor
                } else {
                    steady
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuModel, Parallelization};

    const TOL: f64 = 0.35;

    /// Paper Table 3 (single precision): rows (layout), columns
    /// (P630, Iris) per scenario.
    fn paper_table3() -> Vec<(Scenario, Layout, f64, f64)> {
        vec![
            (Scenario::Precalculated, Layout::Aos, 4.76, 2.10),
            (Scenario::Precalculated, Layout::Soa, 2.43, 1.42),
            (Scenario::Analytical, Layout::Aos, 4.45, 2.10),
            (Scenario::Analytical, Layout::Soa, 1.93, 1.00),
        ]
    }

    #[test]
    fn every_table3_cell_within_band() {
        let p630 = GpuModel::p630();
        let iris = GpuModel::iris_xe_max();
        for (scenario, layout, paper_p630, paper_iris) in paper_table3() {
            let m_p = p630.nsps_f32(scenario, layout);
            let m_i = iris.nsps_f32(scenario, layout);
            assert!(
                (m_p - paper_p630).abs() / paper_p630 < TOL,
                "P630 {scenario} {layout}: model {m_p:.2} vs paper {paper_p630}"
            );
            assert!(
                (m_i - paper_iris).abs() / paper_iris < TOL,
                "Iris {scenario} {layout}: model {m_i:.2} vs paper {paper_iris}"
            );
        }
    }

    #[test]
    fn soa_wins_decisively_on_gpus() {
        // The paper's headline GPU observation: "run time may differ by
        // more than half" between layouts.
        for gpu in GpuModel::paper_devices() {
            for scenario in Scenario::all() {
                let aos = gpu.nsps_f32(scenario, Layout::Aos);
                let soa = gpu.nsps_f32(scenario, Layout::Soa);
                assert!(aos > 1.4 * soa, "{} {scenario}", gpu.spec.name);
            }
        }
    }

    #[test]
    fn gpu_vs_cpu_slowdown_factors_match_paper() {
        // Paper §5.3: "the code on P630 works slower only by a factor of
        // 3.5–4.5, and the code on Iris Xe Max is slower by a factor of
        // 1.7–2.6, compared to 2 high-end CPUs".
        let cpu = CpuModel::endeavour();
        let p630 = GpuModel::p630();
        let iris = GpuModel::iris_xe_max();
        // The quoted factors refer to the SoA rows (paper AoS ratios are
        // larger: e.g. 4.76/0.54 ≈ 8.8 for the P630 Precalculated cell).
        for scenario in Scenario::all() {
            let cpu_soa = cpu.table2_cell(
                scenario,
                Layout::Soa,
                Precision::F32,
                Parallelization::DpcppNuma,
            );
            let fp = p630.nsps_f32(scenario, Layout::Soa) / cpu_soa;
            let fi = iris.nsps_f32(scenario, Layout::Soa) / cpu_soa;
            assert!((2.5..5.5).contains(&fp), "P630/{scenario}: {fp:.2}");
            assert!((1.2..3.2).contains(&fi), "Iris/{scenario}: {fi:.2}");
            // AoS is worse than SoA on the devices but still bounded.
            let cpu_aos = cpu.table2_cell(
                scenario,
                Layout::Aos,
                Precision::F32,
                Parallelization::DpcppNuma,
            );
            let fp_aos = p630.nsps_f32(scenario, Layout::Aos) / cpu_aos;
            assert!(
                (5.0..12.0).contains(&fp_aos),
                "P630 AoS/{scenario}: {fp_aos:.2}"
            );
            // And Iris is the faster of the two devices everywhere.
            for layout in [Layout::Aos, Layout::Soa] {
                assert!(iris.nsps_f32(scenario, layout) < p630.nsps_f32(scenario, layout));
            }
        }
    }

    #[test]
    fn first_iteration_is_half_again_slower() {
        let gpu = GpuModel::iris_xe_max();
        let profile = gpu.iteration_profile(Scenario::Analytical, Layout::Soa, 10);
        assert_eq!(profile.len(), 10);
        let steady = profile[1];
        assert!((profile[0] / steady - 1.5).abs() < 1e-12);
        assert!(profile[1..].iter().all(|&t| (t - steady).abs() < 1e-12));
    }

    #[test]
    fn fp64_emulation_is_catastrophic_on_iris() {
        let iris = GpuModel::iris_xe_max();
        let f32_t = iris.nsps(Scenario::Analytical, Layout::Soa, Precision::F32);
        let f64_t = iris.nsps(Scenario::Analytical, Layout::Soa, Precision::F64);
        assert!(
            f64_t > 5.0 * f32_t,
            "emulated double should be far slower: {f64_t} vs {f32_t}"
        );
        // Native-double P630 degrades only ~2× on the compute path.
        let p630 = GpuModel::p630();
        let p_f32 = p630.nsps(Scenario::Analytical, Layout::Soa, Precision::F32);
        let p_f64 = p630.nsps(Scenario::Analytical, Layout::Soa, Precision::F64);
        assert!(p_f64 < 3.5 * p_f32);
    }
}

//! Layout-agnostic particle access (the paper's `ParticleProxy`).
//!
//! The paper (§3) explains that Hi-Chi implements a `ParticleProxy` class
//! which "completely repeats the functionality of the Particle class, but
//! stores references", so that one templated kernel runs over both the AoS
//! and the SoA ensembles. In Rust the same role is played by two traits:
//!
//! * [`ParticleView`] — mutable access to *one* particle, whatever its
//!   backing storage. The pushers are generic over this trait.
//! * [`ParticleAccess`] — indexed access to a *collection* of particles,
//!   with a layout-native view type (GAT) and chunk splitting for the
//!   parallel runtime.
//! * [`ParticleStore`] — a growable [`ParticleAccess`] (the full ensembles;
//!   chunks only implement `ParticleAccess`).

use crate::particle::Particle;
use crate::species::SpeciesId;
use pic_math::{Real, Vec3};

/// Memory layout of a particle collection (paper §3: AoS vs SoA).
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum Layout {
    /// Array of structures — one contiguous `Particle` record per particle.
    Aos,
    /// Structure of arrays — one contiguous array per particle attribute.
    Soa,
}

impl Layout {
    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Layout::Aos => "AoS",
            Layout::Soa => "SoA",
        }
    }
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Mutable access to a single particle — the Rust `ParticleProxy`.
///
/// Kernels written against this trait monomorphize to direct loads/stores
/// for both layouts; there is no dynamic dispatch on the hot path.
pub trait ParticleView<R: Real> {
    /// Particle position, cm.
    fn position(&self) -> Vec3<R>;
    /// Particle momentum, g·cm/s.
    fn momentum(&self) -> Vec3<R>;
    /// Macroparticle weight.
    fn weight(&self) -> R;
    /// Cached Lorentz factor.
    fn gamma(&self) -> R;
    /// Species index.
    fn species(&self) -> SpeciesId;

    /// Sets the position.
    fn set_position(&mut self, v: Vec3<R>);
    /// Sets the momentum (callers must also refresh γ; the pushers do).
    fn set_momentum(&mut self, v: Vec3<R>);
    /// Sets the macroparticle weight.
    fn set_weight(&mut self, w: R);
    /// Sets the cached Lorentz factor.
    fn set_gamma(&mut self, g: R);
    /// Sets the species index.
    fn set_species(&mut self, s: SpeciesId);

    /// Copies the particle out into an owned record.
    fn load(&self) -> Particle<R> {
        Particle {
            position: self.position(),
            momentum: self.momentum(),
            weight: self.weight(),
            gamma: self.gamma(),
            species: self.species(),
        }
    }

    /// Overwrites the particle from an owned record.
    fn store(&mut self, p: &Particle<R>) {
        self.set_position(p.position);
        self.set_momentum(p.momentum);
        self.set_weight(p.weight);
        self.set_gamma(p.gamma);
        self.set_species(p.species);
    }
}

/// A `Particle` is trivially a view of itself.
impl<R: Real> ParticleView<R> for Particle<R> {
    #[inline(always)]
    fn position(&self) -> Vec3<R> {
        self.position
    }
    #[inline(always)]
    fn momentum(&self) -> Vec3<R> {
        self.momentum
    }
    #[inline(always)]
    fn weight(&self) -> R {
        self.weight
    }
    #[inline(always)]
    fn gamma(&self) -> R {
        self.gamma
    }
    #[inline(always)]
    fn species(&self) -> SpeciesId {
        self.species
    }
    #[inline(always)]
    fn set_position(&mut self, v: Vec3<R>) {
        self.position = v;
    }
    #[inline(always)]
    fn set_momentum(&mut self, v: Vec3<R>) {
        self.momentum = v;
    }
    #[inline(always)]
    fn set_weight(&mut self, w: R) {
        self.weight = w;
    }
    #[inline(always)]
    fn set_gamma(&mut self, g: R) {
        self.gamma = g;
    }
    #[inline(always)]
    fn set_species(&mut self, s: SpeciesId) {
        self.species = s;
    }
}

impl<R: Real, V: ParticleView<R> + ?Sized> ParticleView<R> for &mut V {
    #[inline(always)]
    fn position(&self) -> Vec3<R> {
        (**self).position()
    }
    #[inline(always)]
    fn momentum(&self) -> Vec3<R> {
        (**self).momentum()
    }
    #[inline(always)]
    fn weight(&self) -> R {
        (**self).weight()
    }
    #[inline(always)]
    fn gamma(&self) -> R {
        (**self).gamma()
    }
    #[inline(always)]
    fn species(&self) -> SpeciesId {
        (**self).species()
    }
    #[inline(always)]
    fn set_position(&mut self, v: Vec3<R>) {
        (**self).set_position(v);
    }
    #[inline(always)]
    fn set_momentum(&mut self, v: Vec3<R>) {
        (**self).set_momentum(v);
    }
    #[inline(always)]
    fn set_weight(&mut self, w: R) {
        (**self).set_weight(w);
    }
    #[inline(always)]
    fn set_gamma(&mut self, g: R) {
        (**self).set_gamma(g);
    }
    #[inline(always)]
    fn set_species(&mut self, s: SpeciesId) {
        (**self).set_species(s);
    }
}

/// A computation applied to every particle of a collection.
///
/// This is the rank-2 abstraction that lets one kernel monomorphize over
/// both layouts' native views: `apply` is generic over the view type, so a
/// single `ParticleKernel` impl (e.g. the Boris pusher) compiles to direct
/// loads/stores for AoS *and* SoA — exactly the role of the C++ template
/// functions the paper instantiates over `Particle&`/`ParticleProxy`.
pub trait ParticleKernel<R: Real> {
    /// Processes one particle. `index` is the particle's global index in
    /// the owning ensemble (chunk offsets included).
    fn apply<V: ParticleView<R>>(&mut self, index: usize, view: &mut V);

    /// Processes every particle of `chunk`. The default loops over
    /// [`apply`](Self::apply) through the layout-native views; kernels
    /// with a faster whole-chunk form (the zero-gather SoA Boris path)
    /// override this to dispatch on [`ParticleAccess::soa_lanes_mut`].
    fn apply_chunk<A: ParticleAccess<R>>(&mut self, chunk: &mut A)
    where
        Self: Sized,
    {
        chunk.for_each_mut(self);
    }
}

/// Adapts a closure over `&mut dyn ParticleView` into a [`ParticleKernel`].
///
/// Convenient for tests and cold paths; hot kernels should implement
/// [`ParticleKernel`] directly to avoid the virtual calls.
#[derive(Debug)]
pub struct DynKernel<F>(pub F);

impl<R, F> ParticleKernel<R> for DynKernel<F>
where
    R: Real,
    F: FnMut(usize, &mut dyn ParticleView<R>),
{
    fn apply<V: ParticleView<R>>(&mut self, index: usize, view: &mut V) {
        (self.0)(index, view);
    }
}

/// Indexed access to a collection of particles with a layout-native view.
///
/// Implemented by the owning ensembles ([`crate::AosEnsemble`],
/// [`crate::SoaEnsemble`]) and by the borrowed chunks they split into for
/// the parallel runtime ([`crate::AosChunkMut`], [`crate::SoaChunkMut`]).
pub trait ParticleAccess<R: Real>: Send {
    /// The layout-native mutable single-particle view.
    type ViewMut<'a>: ParticleView<R>
    where
        Self: 'a;
    /// The chunk type produced by [`split_mut`](Self::split_mut); a chunk is
    /// itself a `ParticleAccess` so kernels recurse over it unchanged.
    type ChunkMut<'a>: ParticleAccess<R>
    where
        Self: 'a;

    /// This collection's memory layout.
    fn layout(&self) -> Layout;

    /// Number of particles.
    fn len(&self) -> usize;

    /// `true` when the collection holds no particles.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the first particle relative to the owning ensemble — 0 for
    /// ensembles, the chunk offset for chunks. Precalculated-field kernels
    /// use this to address their per-particle field arrays.
    fn base_index(&self) -> usize {
        0
    }

    /// Copies particle `i` out.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn get(&self, i: usize) -> Particle<R>;

    /// Overwrites particle `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn set(&mut self, i: usize, p: &Particle<R>);

    /// Returns the layout-native mutable view of particle `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn view_mut(&mut self, i: usize) -> Self::ViewMut<'_>;

    /// Applies `kernel` to each particle through its native view, passing
    /// global indices ([`base_index`](Self::base_index) included).
    fn for_each_mut<K: ParticleKernel<R>>(&mut self, kernel: &mut K) {
        let base = self.base_index();
        for i in 0..self.len() {
            let mut v = self.view_mut(i);
            kernel.apply(base + i, &mut v);
        }
    }

    /// Direct mutable access to the structure-of-arrays component columns,
    /// when this collection is SoA-backed. `None` (the default) means the
    /// layout has no contiguous columns and callers must go through the
    /// per-particle views; `Some` lets kernels run straight-line lane
    /// loops with no gather/scatter.
    fn soa_lanes_mut(&mut self) -> Option<crate::soa::SoaLanesMut<'_, R>> {
        None
    }

    /// Splits the collection into disjoint mutable chunks of the given
    /// sizes, in order. Sizes must sum to `len()`; zero sizes are skipped.
    ///
    /// # Panics
    ///
    /// Panics if the sizes do not sum to `len()`.
    fn split_sizes_mut(&mut self, sizes: &[usize]) -> Vec<Self::ChunkMut<'_>>;

    /// Splits the collection into disjoint mutable chunks of at most
    /// `chunk_size` particles, for the parallel runtime.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    fn split_mut(&mut self, chunk_size: usize) -> Vec<Self::ChunkMut<'_>> {
        assert!(chunk_size > 0, "split_mut: chunk_size must be positive");
        let n = self.len();
        let mut sizes = vec![chunk_size; n / chunk_size];
        if n % chunk_size != 0 {
            sizes.push(n % chunk_size);
        }
        self.split_sizes_mut(&sizes)
    }
}

/// A growable [`ParticleAccess`]: the owning ensembles.
pub trait ParticleStore<R: Real>: ParticleAccess<R> + Default {
    /// Appends a particle.
    fn push(&mut self, p: Particle<R>);

    /// Removes all particles, keeping capacity.
    fn clear(&mut self);

    /// Reserves capacity for `additional` more particles.
    fn reserve(&mut self, additional: usize);

    /// Removes particle `i` in O(1) by swapping the last particle into its
    /// slot, returning the removed record. Used by escape/boundary handling.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn swap_remove(&mut self, i: usize) -> Particle<R>;

    /// Removes every particle failing `keep` (O(n), swap-remove based, so
    /// the surviving order is not preserved). Returns the number removed.
    /// The escape-handling primitive: drop particles that left the region
    /// of interest instead of pushing them forever.
    fn retain(&mut self, mut keep: impl FnMut(&Particle<R>) -> bool) -> usize {
        let mut removed = 0;
        let mut i = 0;
        while i < self.len() {
            if keep(&self.get(i)) {
                i += 1;
            } else {
                self.swap_remove(i);
                removed += 1;
            }
        }
        removed
    }

    /// Builds a store from owned records.
    fn from_particles<I: IntoIterator<Item = Particle<R>>>(iter: I) -> Self {
        let mut s = Self::default();
        for p in iter {
            s.push(p);
        }
        s
    }

    /// Copies all particles out as owned records (diagnostics, sorting).
    fn to_particles(&self) -> Vec<Particle<R>> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_names_match_paper() {
        assert_eq!(Layout::Aos.name(), "AoS");
        assert_eq!(Layout::Soa.name(), "SoA");
        assert_eq!(Layout::Soa.to_string(), "SoA");
    }

    #[test]
    fn particle_is_its_own_view() {
        let mut p = Particle::<f64>::default();
        p.set_position(Vec3::new(1.0, 2.0, 3.0));
        p.set_gamma(2.0);
        assert_eq!(ParticleView::<f64>::position(&p), Vec3::new(1.0, 2.0, 3.0));
        let copy = p.load();
        assert_eq!(copy, p);
        let mut q = Particle::<f64>::default();
        q.store(&copy);
        assert_eq!(q, p);
    }

    #[test]
    fn mut_ref_forwards_view() {
        fn bump<R: Real>(mut v: impl ParticleView<R>) {
            let w = v.weight();
            v.set_weight(w + R::ONE);
        }
        let mut p = Particle::<f32>::default();
        bump(&mut p);
        assert_eq!(p.weight, 1.0);
    }
}

//! Initial particle distributions.
//!
//! The paper's benchmark (§5.2) starts from "electrons at rest, distributed
//! uniformly within the sphere with radius r = 0.6λ". This module provides
//! that distribution plus the usual PIC initialisations (uniform box,
//! Maxwellian momenta) used by the full simulation substrate.

use crate::particle::{lorentz_gamma, Particle};
use crate::species::{Species, SpeciesId};
use crate::view::ParticleStore;
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::{Real, Vec3};
use rand::Rng;

/// A uniform-density sphere.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SphereDist {
    /// Sphere centre, cm.
    pub center: Vec3<f64>,
    /// Sphere radius, cm.
    pub radius: f64,
}

/// An axis-aligned uniform-density box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxDist {
    /// Lower corner, cm.
    pub min: Vec3<f64>,
    /// Upper corner, cm.
    pub max: Vec3<f64>,
}

/// Samples a point uniformly inside a sphere (exact inverse-CDF sampling:
/// radius ∝ u^(1/3), direction isotropic).
pub fn sample_sphere<G: Rng + ?Sized>(dist: &SphereDist, rng: &mut G) -> Vec3<f64> {
    let dir = sample_unit_vector(rng);
    let r = dist.radius * rng.gen::<f64>().powf(1.0 / 3.0);
    dist.center + dir * r
}

/// Samples an isotropic unit vector (Marsaglia's method on the sphere).
pub fn sample_unit_vector<G: Rng + ?Sized>(rng: &mut G) -> Vec3<f64> {
    loop {
        let x = rng.gen::<f64>() * 2.0 - 1.0;
        let y = rng.gen::<f64>() * 2.0 - 1.0;
        let z = rng.gen::<f64>() * 2.0 - 1.0;
        let n2 = x * x + y * y + z * z;
        if n2 > 1e-12 && n2 <= 1.0 {
            let inv = n2.sqrt().recip();
            return Vec3::new(x * inv, y * inv, z * inv);
        }
    }
}

/// Samples a point uniformly inside a box.
pub fn sample_box<G: Rng + ?Sized>(dist: &BoxDist, rng: &mut G) -> Vec3<f64> {
    Vec3::new(
        rng.gen_range(dist.min.x..dist.max.x),
        rng.gen_range(dist.min.y..dist.max.y),
        rng.gen_range(dist.min.z..dist.max.z),
    )
}

/// Samples a standard normal variate (Box–Muller; `rand_distr` is not a
/// permitted dependency, so the transform is implemented here).
pub fn sample_standard_normal<G: Rng + ?Sized>(rng: &mut G) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills `store` with `n` particles of `species` at rest, uniformly
/// distributed in `sphere` — the paper's benchmark initial condition.
pub fn fill_sphere_at_rest<R, S, G>(
    store: &mut S,
    n: usize,
    sphere: &SphereDist,
    weight: f64,
    species: SpeciesId,
    rng: &mut G,
) where
    R: Real,
    S: ParticleStore<R>,
    G: Rng + ?Sized,
{
    store.reserve(n);
    for _ in 0..n {
        let pos = sample_sphere(sphere, rng);
        store.push(Particle::at_rest(
            Vec3::from_f64(pos),
            R::from_f64(weight),
            species,
        ));
    }
}

/// Fills `store` with the `[start, end)` index range of the same
/// `n_total`-particle sphere fill [`fill_sphere_at_rest`] produces.
///
/// The isotropic direction sampler is a rejection loop, so each particle
/// consumes a *variable* number of RNG draws — a shard cannot fast-
/// forward the stream to its offset. Instead the full seeded sequence is
/// replayed from particle 0 and only the range is kept, which makes the
/// extracted range bitwise-identical to the corresponding slice of the
/// full fill (the shard-invariance property the serving layer's domain
/// decomposition rests on).
#[allow(clippy::too_many_arguments)]
pub fn fill_sphere_at_rest_range<R, S, G>(
    store: &mut S,
    n_total: usize,
    start: usize,
    end: usize,
    sphere: &SphereDist,
    weight: f64,
    species: SpeciesId,
    rng: &mut G,
) where
    R: Real,
    S: ParticleStore<R>,
    G: Rng + ?Sized,
{
    let end = end.min(n_total);
    store.reserve(end.saturating_sub(start));
    for i in 0..end {
        let pos = sample_sphere(sphere, rng);
        if i >= start {
            store.push(Particle::at_rest(
                Vec3::from_f64(pos),
                R::from_f64(weight),
                species,
            ));
        }
    }
}

/// Fills `store` with `n` particles uniformly distributed in `bounds` with
/// non-relativistic Maxwellian momenta of temperature `temperature_erg`
/// (momentum spread per axis: √(m·k_B T), with the temperature given in
/// energy units).
#[allow(clippy::too_many_arguments)]
pub fn fill_box_maxwellian<R, S, G>(
    store: &mut S,
    n: usize,
    bounds: &BoxDist,
    temperature_erg: f64,
    weight: f64,
    species_id: SpeciesId,
    species: &Species<R>,
    rng: &mut G,
) where
    R: Real,
    S: ParticleStore<R>,
    G: Rng + ?Sized,
{
    let sigma = (species.mass.to_f64() * temperature_erg).sqrt();
    store.reserve(n);
    for _ in 0..n {
        let pos = sample_box(bounds, rng);
        let p = Vec3::new(
            sigma * sample_standard_normal(rng),
            sigma * sample_standard_normal(rng),
            sigma * sample_standard_normal(rng),
        );
        let momentum = Vec3::<R>::from_f64(p);
        store.push(Particle::new(
            Vec3::from_f64(pos),
            momentum,
            R::from_f64(weight),
            species_id,
            species.mass,
        ));
    }
}

/// Fills `store` with a cold drifting beam: `n` particles in `bounds`, all
/// with momentum `gamma_beta · m c` along `direction`.
#[allow(clippy::too_many_arguments)]
pub fn fill_box_beam<R, S, G>(
    store: &mut S,
    n: usize,
    bounds: &BoxDist,
    gamma_beta: f64,
    direction: Vec3<f64>,
    weight: f64,
    species_id: SpeciesId,
    species: &Species<R>,
    rng: &mut G,
) where
    R: Real,
    S: ParticleStore<R>,
    G: Rng + ?Sized,
{
    let mc = species.mass.to_f64() * LIGHT_VELOCITY;
    let p = direction.normalized() * (gamma_beta * mc);
    let momentum = Vec3::<R>::from_f64(p);
    let gamma = lorentz_gamma(momentum, species.mass);
    store.reserve(n);
    for _ in 0..n {
        let pos = sample_box(bounds, rng);
        store.push(Particle {
            position: Vec3::from_f64(pos),
            momentum,
            weight: R::from_f64(weight),
            gamma,
            species: species_id,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aos::AosEnsemble;
    use crate::soa::SoaEnsemble;
    use crate::species::SpeciesTable;
    use crate::view::ParticleAccess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EL: SpeciesId = SpeciesTable::<f64>::ELECTRON;

    #[test]
    fn sphere_points_inside_radius() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = SphereDist {
            center: Vec3::new(1.0, 2.0, 3.0),
            radius: 0.5,
        };
        for _ in 0..1000 {
            let p = sample_sphere(&d, &mut rng);
            assert!((p - d.center).norm() <= d.radius + 1e-12);
        }
    }

    #[test]
    fn sphere_radius_distribution_is_uniform_density() {
        // For uniform density, the fraction of points with r < R/2 is 1/8.
        let mut rng = StdRng::seed_from_u64(2);
        let d = SphereDist {
            center: Vec3::zero(),
            radius: 1.0,
        };
        let n = 20000;
        let inside = (0..n)
            .filter(|_| sample_sphere(&d, &mut rng).norm() < 0.5)
            .count();
        let frac = inside as f64 / n as f64;
        assert!((frac - 0.125).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn unit_vectors_are_isotropic() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20000;
        let mean: Vec3<f64> = (0..n)
            .map(|_| sample_unit_vector(&mut rng))
            .sum::<Vec3<f64>>()
            / n as f64;
        assert!(mean.norm() < 0.02, "mean = {mean}");
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50000;
        let xs: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn fill_sphere_matches_paper_setup() {
        let mut rng = StdRng::seed_from_u64(5);
        let lambda = pic_math::constants::BENCH_WAVELENGTH;
        let d = SphereDist {
            center: Vec3::zero(),
            radius: 0.6 * lambda,
        };
        let mut ens = SoaEnsemble::<f32>::new();
        fill_sphere_at_rest(&mut ens, 500, &d, 1.0, EL, &mut rng);
        assert_eq!(ens.len(), 500);
        for i in 0..ens.len() {
            let p = ens.get(i);
            assert_eq!(p.momentum, Vec3::zero());
            assert_eq!(p.gamma, 1.0);
            assert!(p.position.to_f64().norm() <= 0.6 * lambda * 1.0001);
        }
    }

    #[test]
    fn seeded_fills_are_deterministic_across_layouts() {
        let d = SphereDist {
            center: Vec3::zero(),
            radius: 1.0,
        };
        let mut aos = AosEnsemble::<f64>::new();
        let mut soa = SoaEnsemble::<f64>::new();
        fill_sphere_at_rest(&mut aos, 100, &d, 1.0, EL, &mut StdRng::seed_from_u64(9));
        fill_sphere_at_rest(&mut soa, 100, &d, 1.0, EL, &mut StdRng::seed_from_u64(9));
        for i in 0..100 {
            assert_eq!(aos.get(i), soa.get(i));
        }
    }

    #[test]
    fn range_fill_matches_the_full_fill_slice() {
        let d = SphereDist {
            center: Vec3::zero(),
            radius: 1.0,
        };
        let mut full = SoaEnsemble::<f64>::new();
        fill_sphere_at_rest(&mut full, 37, &d, 1.0, EL, &mut StdRng::seed_from_u64(11));
        for (start, end) in [(0, 37), (0, 13), (13, 25), (25, 37), (36, 37)] {
            let mut part = SoaEnsemble::<f64>::new();
            fill_sphere_at_rest_range(
                &mut part,
                37,
                start,
                end,
                &d,
                1.0,
                EL,
                &mut StdRng::seed_from_u64(11),
            );
            assert_eq!(part.len(), end - start);
            for i in 0..part.len() {
                assert_eq!(part.get(i), full.get(start + i), "range ({start},{end})");
            }
        }
        // An out-of-bounds end is clamped; an empty range stays empty.
        let mut clamped = SoaEnsemble::<f64>::new();
        fill_sphere_at_rest_range(
            &mut clamped,
            37,
            30,
            99,
            &d,
            1.0,
            EL,
            &mut StdRng::seed_from_u64(11),
        );
        assert_eq!(clamped.len(), 7);
        let mut empty = SoaEnsemble::<f64>::new();
        fill_sphere_at_rest_range(
            &mut empty,
            37,
            5,
            5,
            &d,
            1.0,
            EL,
            &mut StdRng::seed_from_u64(11),
        );
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn maxwellian_fill_has_expected_spread() {
        let mut rng = StdRng::seed_from_u64(6);
        let table = SpeciesTable::<f64>::with_standard_species();
        let e = *table.get(EL);
        let bounds = BoxDist {
            min: Vec3::zero(),
            max: Vec3::splat(1.0),
        };
        let temp = 1.0e-9; // erg, nonrelativistic for electrons
        let mut ens = AosEnsemble::<f64>::new();
        fill_box_maxwellian(&mut ens, 20000, &bounds, temp, 1.0, EL, &e, &mut rng);
        let sigma2 = e.mass.to_f64() * temp;
        let var = ens
            .as_slice()
            .iter()
            .map(|p| p.momentum.x * p.momentum.x)
            .sum::<f64>()
            / ens.len() as f64;
        assert!(
            (var / sigma2 - 1.0).abs() < 0.05,
            "var ratio = {}",
            var / sigma2
        );
    }

    #[test]
    fn beam_fill_is_monoenergetic() {
        let mut rng = StdRng::seed_from_u64(7);
        let table = SpeciesTable::<f64>::with_standard_species();
        let e = *table.get(EL);
        let bounds = BoxDist {
            min: Vec3::zero(),
            max: Vec3::splat(1.0),
        };
        let mut ens = AosEnsemble::<f64>::new();
        fill_box_beam(
            &mut ens,
            50,
            &bounds,
            3.0,
            Vec3::new(0.0, 0.0, 2.0),
            1.0,
            EL,
            &e,
            &mut rng,
        );
        let expect_gamma = (1.0f64 + 9.0).sqrt();
        for p in ens.as_slice() {
            assert!((p.gamma - expect_gamma).abs() < 1e-12);
            assert_eq!(p.momentum.x, 0.0);
            assert!(p.momentum.z > 0.0);
        }
    }
}

//! The per-particle record (paper §3, `class Particle`).

use crate::species::{Species, SpeciesId};
use pic_math::constants::LIGHT_VELOCITY;
use pic_math::{Real, Vec3};

/// One macroparticle, matching the paper's `Particle` class field-for-field:
/// position, momentum, weight, Lorentz γ and a species index.
///
/// Fields are public: like the C++ original this is a passive record; the
/// γ-consistency invariant is maintained by the pushers, which recompute γ
/// whenever they change the momentum (see [`lorentz_gamma`]).
///
/// # Example
///
/// ```
/// use pic_particles::{Particle, Species, SpeciesTable};
/// use pic_math::Vec3;
///
/// let e = Species::<f64>::electron();
/// let p = Particle::at_rest(Vec3::zero(), 1.0, SpeciesTable::<f64>::ELECTRON);
/// assert_eq!(p.gamma, 1.0);
/// assert_eq!(p.velocity(&e), Vec3::zero());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Particle<R> {
    /// Position (x, y, z), cm.
    pub position: Vec3<R>,
    /// Momentum (pₓ, p_y, p_z), g·cm/s.
    pub momentum: Vec3<R>,
    /// Macroparticle weight (number of real particles represented).
    pub weight: R,
    /// Lorentz factor γ = √(1 + (p/mc)²), cached alongside the momentum.
    pub gamma: R,
    /// Species index into a [`crate::SpeciesTable`].
    pub species: SpeciesId,
}

/// Computes the Lorentz factor γ = √(1 + (p/mc)²).
///
/// The ratio `p/(mc)` is formed *before* squaring so that single-precision
/// CGS momenta (~10⁻¹⁷ g·cm/s for an electron) never underflow when squared.
#[inline(always)]
pub fn lorentz_gamma<R: Real>(momentum: Vec3<R>, mass: R) -> R {
    let inv_mc = (mass * R::from_f64(LIGHT_VELOCITY)).recip();
    let u = momentum * inv_mc;
    (R::ONE + u.norm2()).sqrt()
}

impl<R: Real> Particle<R> {
    /// Creates a particle with a consistent cached γ.
    pub fn new(
        position: Vec3<R>,
        momentum: Vec3<R>,
        weight: R,
        species: SpeciesId,
        mass: R,
    ) -> Particle<R> {
        Particle {
            position,
            momentum,
            weight,
            gamma: lorentz_gamma(momentum, mass),
            species,
        }
    }

    /// Creates a particle at rest (γ = 1) at `position`.
    pub fn at_rest(position: Vec3<R>, weight: R, species: SpeciesId) -> Particle<R> {
        Particle {
            position,
            momentum: Vec3::zero(),
            weight,
            gamma: R::ONE,
            species,
        }
    }

    /// Velocity v = p / (γ m), cm/s.
    #[inline]
    pub fn velocity(&self, species: &Species<R>) -> Vec3<R> {
        self.momentum / (self.gamma * species.mass)
    }

    /// Kinetic energy (γ − 1) m c², erg.
    #[inline]
    pub fn kinetic_energy(&self, species: &Species<R>) -> R {
        (self.gamma - R::ONE) * species.rest_energy()
    }

    /// Recomputes the cached γ from the current momentum.
    #[inline]
    pub fn refresh_gamma(&mut self, mass: R) {
        self.gamma = lorentz_gamma(self.momentum, mass);
    }

    /// Speed as a fraction of c, |v|/c ∈ [0, 1).
    #[inline]
    pub fn beta(&self, species: &Species<R>) -> R {
        let c = R::from_f64(LIGHT_VELOCITY);
        self.velocity(species).norm() / c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::SpeciesTable;
    use pic_math::constants::{ELECTRON_MASS, LIGHT_VELOCITY};

    #[test]
    fn gamma_at_rest_is_one() {
        let g = lorentz_gamma(Vec3::<f64>::zero(), ELECTRON_MASS);
        assert_eq!(g, 1.0);
    }

    #[test]
    fn gamma_matches_analytic() {
        // p = mc ⇒ γ = √2.
        let mc = ELECTRON_MASS * LIGHT_VELOCITY;
        let g = lorentz_gamma(Vec3::new(mc, 0.0, 0.0), ELECTRON_MASS);
        assert!((g - 2.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn gamma_does_not_underflow_in_f32() {
        // A slow electron: p = 1e-3·mc ≈ 2.7e-20 g·cm/s. Squaring that in
        // f32 before dividing would underflow to a subnormal; forming the
        // ratio first keeps full precision.
        let mc = (ELECTRON_MASS * LIGHT_VELOCITY) as f32;
        let p = Vec3::new(1e-3 * mc, 0.0, 0.0);
        let g = lorentz_gamma(p, ELECTRON_MASS as f32);
        let expect = (1.0f64 + 1e-6).sqrt() as f32;
        assert!((g - expect).abs() < 1e-7, "γ = {g}, want {expect}");
    }

    #[test]
    fn velocity_of_relativistic_particle_saturates_below_c() {
        let e = Species::<f64>::electron();
        let mc = ELECTRON_MASS * LIGHT_VELOCITY;
        let p = Particle::new(
            Vec3::zero(),
            Vec3::new(100.0 * mc, 0.0, 0.0),
            1.0,
            SpeciesTable::<f64>::ELECTRON,
            e.mass,
        );
        let beta = p.beta(&e);
        assert!(beta < 1.0);
        assert!(beta > 0.9999, "β = {beta}");
    }

    #[test]
    fn kinetic_energy_nonrelativistic_limit() {
        // For p ≪ mc, (γ−1)mc² ≈ p²/2m.
        let e = Species::<f64>::electron();
        let mc = ELECTRON_MASS * LIGHT_VELOCITY;
        let px = 1e-3 * mc;
        let p = Particle::new(
            Vec3::zero(),
            Vec3::new(px, 0.0, 0.0),
            1.0,
            SpeciesTable::<f64>::ELECTRON,
            e.mass,
        );
        let classical = px * px / (2.0 * e.mass);
        let rel = p.kinetic_energy(&e);
        assert!((rel - classical).abs() / classical < 1e-5);
    }

    #[test]
    fn refresh_gamma_restores_invariant() {
        let e = Species::<f64>::electron();
        let mut p = Particle::at_rest(Vec3::zero(), 1.0, SpeciesTable::<f64>::ELECTRON);
        p.momentum = Vec3::new(ELECTRON_MASS * LIGHT_VELOCITY, 0.0, 0.0);
        assert_eq!(p.gamma, 1.0); // stale
        p.refresh_gamma(e.mass);
        assert!((p.gamma - 2.0f64.sqrt()).abs() < 1e-14);
    }
}

//! Array-of-structures ensemble (paper §3, the `AoS` pattern).

use crate::particle::Particle;
use crate::view::{Layout, ParticleAccess, ParticleStore};
use pic_math::Real;

/// The AoS ensemble: a single contiguous array of [`Particle`] records,
/// matching the paper's "array of objects" pattern. Preserves per-particle
/// memory locality; vector loads become strided (paper §3's trade-off).
///
/// # Example
///
/// ```
/// use pic_particles::{AosEnsemble, Particle, ParticleAccess, ParticleStore};
///
/// let mut ens = AosEnsemble::<f64>::new();
/// ens.push(Particle::default());
/// ens.push(Particle::default());
/// let chunks = ens.split_mut(1);
/// assert_eq!(chunks.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AosEnsemble<R> {
    items: Vec<Particle<R>>,
}

impl<R: Real> AosEnsemble<R> {
    /// Creates an empty ensemble.
    pub fn new() -> AosEnsemble<R> {
        AosEnsemble { items: Vec::new() }
    }

    /// Creates an empty ensemble with room for `capacity` particles.
    pub fn with_capacity(capacity: usize) -> AosEnsemble<R> {
        AosEnsemble {
            items: Vec::with_capacity(capacity),
        }
    }

    /// Borrows the backing records.
    pub fn as_slice(&self) -> &[Particle<R>] {
        &self.items
    }

    /// Mutably borrows the backing records.
    pub fn as_mut_slice(&mut self) -> &mut [Particle<R>] {
        &mut self.items
    }

    /// Consumes the ensemble, returning the backing vector.
    pub fn into_inner(self) -> Vec<Particle<R>> {
        self.items
    }
}

impl<R: Real> From<Vec<Particle<R>>> for AosEnsemble<R> {
    fn from(items: Vec<Particle<R>>) -> Self {
        AosEnsemble { items }
    }
}

impl<R: Real> FromIterator<Particle<R>> for AosEnsemble<R> {
    fn from_iter<I: IntoIterator<Item = Particle<R>>>(iter: I) -> Self {
        AosEnsemble {
            items: iter.into_iter().collect(),
        }
    }
}

impl<R: Real> Extend<Particle<R>> for AosEnsemble<R> {
    fn extend<I: IntoIterator<Item = Particle<R>>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

/// A disjoint mutable chunk of an [`AosEnsemble`], produced by
/// [`ParticleAccess::split_mut`] for the parallel runtime.
#[derive(Debug)]
pub struct AosChunkMut<'a, R> {
    offset: usize,
    items: &'a mut [Particle<R>],
}

impl<'a, R: Real> AosChunkMut<'a, R> {
    /// Borrows the chunk's records.
    pub fn as_slice(&self) -> &[Particle<R>] {
        self.items
    }

    /// Mutably borrows the chunk's records.
    pub fn as_mut_slice(&mut self) -> &mut [Particle<R>] {
        self.items
    }
}

fn split_aos<'a, R: Real>(
    base: usize,
    mut items: &'a mut [Particle<R>],
    sizes: &[usize],
) -> Vec<AosChunkMut<'a, R>> {
    assert_eq!(
        sizes.iter().sum::<usize>(),
        items.len(),
        "split_sizes_mut: sizes must sum to the collection length"
    );
    let mut out = Vec::new();
    let mut offset = 0usize;
    for &size in sizes {
        if size == 0 {
            continue;
        }
        let (head, tail) = items.split_at_mut(size);
        out.push(AosChunkMut {
            offset: base + offset,
            items: head,
        });
        offset += size;
        items = tail;
    }
    out
}

impl<R: Real> ParticleAccess<R> for AosEnsemble<R> {
    type ViewMut<'v>
        = &'v mut Particle<R>
    where
        Self: 'v;
    type ChunkMut<'v>
        = AosChunkMut<'v, R>
    where
        Self: 'v;

    fn layout(&self) -> Layout {
        Layout::Aos
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    #[inline(always)]
    fn get(&self, i: usize) -> Particle<R> {
        self.items[i]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, p: &Particle<R>) {
        self.items[i] = *p;
    }

    #[inline(always)]
    fn view_mut(&mut self, i: usize) -> Self::ViewMut<'_> {
        // bounds: sweeps iterate `i < len()`; an out-of-range view request
        // is the documented panic of the ensemble accessors.
        &mut self.items[i]
    }

    #[inline]
    fn for_each_mut<K: crate::view::ParticleKernel<R>>(&mut self, kernel: &mut K) {
        for (i, p) in self.items.iter_mut().enumerate() {
            kernel.apply(i, p);
        }
    }

    fn split_sizes_mut(&mut self, sizes: &[usize]) -> Vec<Self::ChunkMut<'_>> {
        split_aos(0, &mut self.items, sizes)
    }
}

impl<'c, R: Real> ParticleAccess<R> for AosChunkMut<'c, R> {
    type ViewMut<'v>
        = &'v mut Particle<R>
    where
        Self: 'v;
    type ChunkMut<'v>
        = AosChunkMut<'v, R>
    where
        Self: 'v;

    fn layout(&self) -> Layout {
        Layout::Aos
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn base_index(&self) -> usize {
        self.offset
    }

    #[inline(always)]
    fn get(&self, i: usize) -> Particle<R> {
        self.items[i]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, p: &Particle<R>) {
        self.items[i] = *p;
    }

    #[inline(always)]
    fn view_mut(&mut self, i: usize) -> Self::ViewMut<'_> {
        // bounds: sweeps iterate `i < len()`; an out-of-range view request
        // is the documented panic of the ensemble accessors.
        &mut self.items[i]
    }

    #[inline]
    fn for_each_mut<K: crate::view::ParticleKernel<R>>(&mut self, kernel: &mut K) {
        let base = self.offset;
        for (i, p) in self.items.iter_mut().enumerate() {
            kernel.apply(base + i, p);
        }
    }

    fn split_sizes_mut(&mut self, sizes: &[usize]) -> Vec<Self::ChunkMut<'_>> {
        split_aos(self.offset, self.items, sizes)
    }
}

impl<R: Real> ParticleStore<R> for AosEnsemble<R> {
    fn push(&mut self, p: Particle<R>) {
        self.items.push(p);
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn reserve(&mut self, additional: usize) {
        self.items.reserve(additional);
    }

    fn swap_remove(&mut self, i: usize) -> Particle<R> {
        self.items.swap_remove(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::SpeciesId;
    use crate::view::ParticleView;
    use pic_math::Vec3;

    fn sample(n: usize) -> AosEnsemble<f64> {
        (0..n)
            .map(|i| Particle {
                position: Vec3::new(i as f64, 0.0, 0.0),
                momentum: Vec3::zero(),
                weight: 1.0,
                gamma: 1.0,
                species: SpeciesId(0),
            })
            .collect()
    }

    #[test]
    fn push_get_set_roundtrip() {
        let mut ens = AosEnsemble::<f64>::new();
        let p = Particle::at_rest(Vec3::new(1.0, 2.0, 3.0), 5.0, SpeciesId(3));
        ens.push(p);
        assert_eq!(ens.get(0), p);
        let q = Particle::at_rest(Vec3::zero(), 7.0, SpeciesId(1));
        ens.set(0, &q);
        assert_eq!(ens.get(0), q);
    }

    #[test]
    fn for_each_mut_visits_all_in_order() {
        let mut ens = sample(10);
        let mut seen = Vec::new();
        let mut kernel = crate::view::DynKernel(|i: usize, v: &mut dyn ParticleView<f64>| {
            seen.push(i);
            let mut pos = v.position();
            pos.y = 1.0;
            v.set_position(pos);
        });
        ens.for_each_mut(&mut kernel);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(ens.as_slice().iter().all(|p| p.position.y == 1.0));
    }

    #[test]
    fn chunk_for_each_passes_global_indices() {
        let mut ens = sample(7);
        let mut chunks = ens.split_mut(3);
        let mut seen = Vec::new();
        for c in &mut chunks {
            let mut kernel = crate::view::DynKernel(|i: usize, _: &mut dyn ParticleView<f64>| {
                seen.push(i);
            });
            c.for_each_mut(&mut kernel);
        }
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn split_mut_covers_disjointly() {
        let mut ens = sample(10);
        let chunks = ens.split_mut(3);
        assert_eq!(chunks.len(), 4);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        let offsets: Vec<usize> = chunks.iter().map(|c| c.base_index()).collect();
        assert_eq!(offsets, vec![0, 3, 6, 9]);
    }

    #[test]
    fn chunk_mutation_reaches_parent() {
        let mut ens = sample(6);
        {
            let mut chunks = ens.split_mut(2);
            for c in &mut chunks {
                let n = c.len();
                for i in 0..n {
                    let global = c.base_index() + i;
                    let v = c.view_mut(i);
                    v.set_weight(global as f64);
                }
            }
        }
        for (i, p) in ens.as_slice().iter().enumerate() {
            assert_eq!(p.weight, i as f64);
        }
    }

    #[test]
    fn nested_split() {
        let mut ens = sample(8);
        let mut top = ens.split_mut(4);
        let sub = top[1].split_mut(2);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0].base_index(), 4);
        assert_eq!(sub[1].base_index(), 6);
    }

    #[test]
    fn retain_drops_failing_particles() {
        let mut ens = sample(10);
        let removed = ens.retain(|p| p.position.x < 5.0);
        assert_eq!(removed, 5);
        assert_eq!(ens.len(), 5);
        assert!(ens.as_slice().iter().all(|p| p.position.x < 5.0));
        // Keeping everything is a no-op.
        assert_eq!(ens.retain(|_| true), 0);
        // Dropping everything empties the store.
        assert_eq!(ens.retain(|_| false), 5);
        assert!(ens.is_empty());
    }

    #[test]
    fn swap_remove_keeps_rest() {
        let mut ens = sample(4);
        let removed = ens.swap_remove(1);
        assert_eq!(removed.position.x, 1.0);
        assert_eq!(ens.len(), 3);
        assert_eq!(ens.get(1).position.x, 3.0); // last swapped in
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let mut ens = sample(2);
        let _ = ens.split_mut(0);
    }

    #[test]
    fn collect_and_extend() {
        let mut ens: AosEnsemble<f64> = sample(2).into_inner().into_iter().collect();
        ens.extend(sample(3).into_inner());
        assert_eq!(ens.len(), 5);
        assert_eq!(ens.to_particles().len(), 5);
    }
}

//! Particle species: the single-copy mass/charge table (paper §3).
//!
//! The paper stores an integer `type` per particle; "parameters
//! corresponding to particles of different types are stored in a separate
//! table in a single copy". [`SpeciesTable`] is that table.

use pic_math::constants;
use pic_math::Real;

/// Index of a species in a [`SpeciesTable`] — the paper's `short type`
/// particle field.
#[derive(Clone, Copy, Debug, Default, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub struct SpeciesId(pub u16);

/// Physical parameters of one particle species in CGS units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Species<R> {
    /// Rest mass, g.
    pub mass: R,
    /// Charge (signed), statC.
    pub charge: R,
}

impl<R: Real> Species<R> {
    /// Electron: m = mₑ, q = −e.
    pub fn electron() -> Species<R> {
        Species {
            mass: R::from_f64(constants::ELECTRON_MASS),
            charge: R::from_f64(constants::ELECTRON_CHARGE),
        }
    }

    /// Positron: m = mₑ, q = +e.
    pub fn positron() -> Species<R> {
        Species {
            mass: R::from_f64(constants::ELECTRON_MASS),
            charge: R::from_f64(constants::ELEMENTARY_CHARGE),
        }
    }

    /// Proton: m = m_p, q = +e.
    pub fn proton() -> Species<R> {
        Species {
            mass: R::from_f64(constants::PROTON_MASS),
            charge: R::from_f64(constants::ELEMENTARY_CHARGE),
        }
    }

    /// Charge-to-mass ratio q/m, statC/g.
    pub fn charge_to_mass(&self) -> R {
        self.charge / self.mass
    }

    /// Rest energy mc², erg.
    pub fn rest_energy(&self) -> R {
        let c = R::from_f64(constants::LIGHT_VELOCITY);
        self.mass * c * c
    }
}

/// The single-copy table mapping [`SpeciesId`] → [`Species`].
///
/// # Example
///
/// ```
/// use pic_particles::{Species, SpeciesTable};
///
/// let mut table = SpeciesTable::<f64>::with_standard_species();
/// let muon = table.register(Species { mass: 1.8835e-25, charge: -4.80320427e-10 });
/// assert!(table.get(muon).mass > table.get(SpeciesTable::<f64>::ELECTRON).mass);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SpeciesTable<R> {
    entries: Vec<Species<R>>,
}

impl<R: Real> SpeciesTable<R> {
    /// Id of the electron in a table built by
    /// [`with_standard_species`](Self::with_standard_species).
    pub const ELECTRON: SpeciesId = SpeciesId(0);
    /// Id of the positron in a standard table.
    pub const POSITRON: SpeciesId = SpeciesId(1);
    /// Id of the proton in a standard table.
    pub const PROTON: SpeciesId = SpeciesId(2);

    /// Creates an empty table.
    pub fn new() -> SpeciesTable<R> {
        SpeciesTable {
            entries: Vec::new(),
        }
    }

    /// Creates a table pre-populated with electron, positron and proton at
    /// the fixed ids [`ELECTRON`](Self::ELECTRON), [`POSITRON`](Self::POSITRON),
    /// [`PROTON`](Self::PROTON).
    pub fn with_standard_species() -> SpeciesTable<R> {
        SpeciesTable {
            entries: vec![Species::electron(), Species::positron(), Species::proton()],
        }
    }

    /// Registers a new species and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the table already holds `u16::MAX` species.
    pub fn register(&mut self, species: Species<R>) -> SpeciesId {
        assert!(
            self.entries.len() < u16::MAX as usize,
            "species table full ({} entries)",
            self.entries.len()
        );
        let id = SpeciesId(self.entries.len() as u16);
        self.entries.push(species);
        id
    }

    /// Looks up a species by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    #[inline]
    pub fn get(&self, id: SpeciesId) -> &Species<R> {
        // bounds: `SpeciesId`s are only issued by `register`, which returns
        // the index it pushed; a foreign id is this fn's documented panic.
        &self.entries[id.0 as usize]
    }

    /// Number of registered species.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no species is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, species)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SpeciesId, &Species<R>)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, s)| (SpeciesId(i as u16), s))
    }
}

impl<R: Real> Default for SpeciesTable<R> {
    fn default() -> Self {
        SpeciesTable::with_standard_species()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_layout() {
        let t = SpeciesTable::<f64>::with_standard_species();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(SpeciesTable::<f64>::ELECTRON), &Species::electron());
        assert_eq!(t.get(SpeciesTable::<f64>::POSITRON), &Species::positron());
        assert_eq!(t.get(SpeciesTable::<f64>::PROTON), &Species::proton());
    }

    #[test]
    fn electron_and_positron_mirror_charges() {
        let e = Species::<f64>::electron();
        let p = Species::<f64>::positron();
        assert_eq!(e.mass, p.mass);
        assert_eq!(e.charge, -p.charge);
        assert!(e.charge < 0.0);
    }

    #[test]
    fn proton_is_heavier() {
        let e = Species::<f64>::electron();
        let p = Species::<f64>::proton();
        let ratio = p.mass / e.mass;
        assert!((ratio - 1836.15).abs() < 0.5, "m_p/m_e = {ratio}");
    }

    #[test]
    fn register_issues_sequential_ids() {
        let mut t = SpeciesTable::<f32>::new();
        let a = t.register(Species::electron());
        let b = t.register(Species::proton());
        assert_eq!(a, SpeciesId(0));
        assert_eq!(b, SpeciesId(1));
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn rest_energy_electron() {
        let e = Species::<f64>::electron();
        assert!((e.rest_energy() - pic_math::constants::ELECTRON_REST_ENERGY).abs() < 1e-10);
    }

    #[test]
    #[should_panic]
    fn get_unknown_id_panics() {
        let t = SpeciesTable::<f64>::new();
        let _ = t.get(SpeciesId(5));
    }
}

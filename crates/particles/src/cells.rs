//! Per-cell particle storage — the *first* ensemble organization the paper
//! describes (§3): "each cell stores its own array of particles. This
//! representation has many advantages, but it requires handling the
//! movement of particles between cells, which causes an additional
//! overhead."
//!
//! Hi-Chi (and this reproduction's benchmark path) uses the second
//! organization — one global array with periodic sorting — but the
//! comparison baseline deserves a real implementation: [`CellEnsemble`]
//! keeps one `Vec<Particle>` per cell and exposes the migration step whose
//! cost is the organization's defining trade-off.

use crate::particle::Particle;
use crate::sort::CellGrid;
use crate::view::ParticleKernel;
use pic_math::Real;

/// A particle ensemble stored as one array per grid cell.
///
/// # Example
///
/// ```
/// use pic_math::Vec3;
/// use pic_particles::cells::CellEnsemble;
/// use pic_particles::sort::CellGrid;
/// use pic_particles::{Particle, SpeciesId};
///
/// let grid = CellGrid::new(Vec3::zero(), Vec3::splat(4.0), [4, 4, 4]);
/// let mut ens = CellEnsemble::<f64>::new(grid);
/// ens.push(Particle::at_rest(Vec3::splat(0.5), 1.0, SpeciesId(0)));
/// assert_eq!(ens.len(), 1);
/// assert_eq!(ens.cell_len(0), 1); // cell (0,0,0)
/// ```
#[derive(Clone, Debug)]
pub struct CellEnsemble<R> {
    grid: CellGrid,
    cells: Vec<Vec<Particle<R>>>,
}

impl<R: Real> CellEnsemble<R> {
    /// Creates an empty ensemble over `grid`.
    pub fn new(grid: CellGrid) -> CellEnsemble<R> {
        let cells = vec![Vec::new(); grid.cell_count()];
        CellEnsemble { grid, cells }
    }

    /// The sorting grid.
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// Total number of particles.
    pub fn len(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// `true` when no particle is stored.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(Vec::is_empty)
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Particles currently in cell `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cell_len(&self, c: usize) -> usize {
        self.cells[c].len()
    }

    /// Borrow of one cell's particles.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cell(&self, c: usize) -> &[Particle<R>] {
        &self.cells[c]
    }

    /// Inserts a particle into the cell containing its position.
    pub fn push(&mut self, p: Particle<R>) {
        let c = self.grid.cell_index(p.position.to_f64());
        self.cells[c].push(p);
    }

    /// Builds a per-cell ensemble from owned records.
    pub fn from_particles<I: IntoIterator<Item = Particle<R>>>(
        grid: CellGrid,
        iter: I,
    ) -> CellEnsemble<R> {
        let mut ens = CellEnsemble::new(grid);
        for p in iter {
            ens.push(p);
        }
        ens
    }

    /// Copies all particles out, cell by cell.
    pub fn to_particles(&self) -> Vec<Particle<R>> {
        self.cells.iter().flatten().copied().collect()
    }

    /// Applies `kernel` to every particle (cell-major order; indices are
    /// running global indices in that order).
    pub fn for_each_mut<K: ParticleKernel<R>>(&mut self, kernel: &mut K) {
        let mut index = 0usize;
        for cell in &mut self.cells {
            for p in cell.iter_mut() {
                kernel.apply(index, p);
                index += 1;
            }
        }
    }

    /// Moves every particle whose position left its cell into the correct
    /// cell, returning how many migrated — the per-step overhead this
    /// organization pays instead of the global array's periodic sort.
    pub fn migrate(&mut self) -> usize {
        let mut moved = Vec::new();
        for c in 0..self.cells.len() {
            let mut i = 0;
            while i < self.cells[c].len() {
                let target = self.grid.cell_index(self.cells[c][i].position.to_f64());
                if target != c {
                    moved.push((target, self.cells[c].swap_remove(i)));
                } else {
                    i += 1;
                }
            }
        }
        let count = moved.len();
        for (target, p) in moved {
            self.cells[target].push(p);
        }
        count
    }

    /// `true` when every particle is stored in the cell containing its
    /// position (the invariant [`migrate`](Self::migrate) restores).
    pub fn is_consistent(&self) -> bool {
        self.cells.iter().enumerate().all(|(c, cell)| {
            cell.iter()
                .all(|p| self.grid.cell_index(p.position.to_f64()) == c)
        })
    }

    /// Occupancy statistics `(min, mean, max)` particles per cell.
    pub fn occupancy(&self) -> (usize, f64, usize) {
        let min = self.cells.iter().map(Vec::len).min().unwrap_or(0);
        let max = self.cells.iter().map(Vec::len).max().unwrap_or(0);
        // lint: allow(precision-pollution): occupancy statistic over
        // integer counts, outside the Real-typed kernel math.
        let mean = self.len() as f64 / self.cell_count() as f64;
        (min, mean, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aos::AosEnsemble;
    use crate::species::SpeciesId;
    use crate::view::{DynKernel, ParticleAccess, ParticleView};
    use pic_math::Vec3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid() -> CellGrid {
        CellGrid::new(Vec3::zero(), Vec3::splat(8.0), [8, 8, 8])
    }

    fn random_particles(n: usize, seed: u64) -> Vec<Particle<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let mut p = Particle::at_rest(
                    Vec3::new(
                        rng.gen_range(0.0..8.0),
                        rng.gen_range(0.0..8.0),
                        rng.gen_range(0.0..8.0),
                    ),
                    1.0,
                    SpeciesId(0),
                );
                p.weight = i as f64;
                p
            })
            .collect()
    }

    #[test]
    fn push_routes_to_the_right_cell() {
        let mut ens = CellEnsemble::<f64>::new(grid());
        ens.push(Particle::at_rest(
            Vec3::new(7.5, 0.5, 0.5),
            1.0,
            SpeciesId(0),
        ));
        assert_eq!(ens.len(), 1);
        assert_eq!(ens.cell_len(7), 1);
        assert!(ens.is_consistent());
    }

    #[test]
    fn holds_the_same_multiset_as_a_global_array() {
        let particles = random_particles(500, 1);
        let ens = CellEnsemble::from_particles(grid(), particles.clone());
        assert_eq!(ens.len(), 500);
        let mut a: Vec<f64> = ens.to_particles().iter().map(|p| p.weight).collect();
        let mut b: Vec<f64> = particles.iter().map(|p| p.weight).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn migration_restores_consistency_after_motion() {
        let mut ens = CellEnsemble::from_particles(grid(), random_particles(400, 2));
        // Move every particle by +0.6 cells in x (periodic wrap by hand).
        let mut kernel = DynKernel(|_i, v: &mut dyn ParticleView<f64>| {
            let mut pos = v.position();
            pos.x = (pos.x + 0.6) % 8.0;
            v.set_position(pos);
        });
        ens.for_each_mut(&mut kernel);
        assert!(!ens.is_consistent());
        let migrated = ens.migrate();
        assert!(ens.is_consistent());
        // With a 0.6-cell shift, roughly 60% of particles change cell.
        let frac = migrated as f64 / ens.len() as f64;
        assert!((0.4..0.8).contains(&frac), "migrated fraction {frac}");
        // Nothing lost.
        assert_eq!(ens.len(), 400);
    }

    #[test]
    fn migrate_is_idempotent() {
        let mut ens = CellEnsemble::from_particles(grid(), random_particles(100, 3));
        assert_eq!(ens.migrate(), 0);
        assert_eq!(ens.migrate(), 0);
    }

    #[test]
    fn kernel_results_match_global_array() {
        // The same order-independent kernel applied to both organizations
        // produces the same multiset of particles.
        let particles = random_particles(300, 4);
        let mut cell_ens = CellEnsemble::from_particles(grid(), particles.clone());
        let mut aos: AosEnsemble<f64> = particles.into_iter().collect();

        let mut k1 = DynKernel(|_i, v: &mut dyn ParticleView<f64>| {
            let pos = v.position();
            v.set_gamma(1.0 + pos.norm2());
        });
        cell_ens.for_each_mut(&mut k1);
        let mut k2 = DynKernel(|_i, v: &mut dyn ParticleView<f64>| {
            let pos = v.position();
            v.set_gamma(1.0 + pos.norm2());
        });
        aos.for_each_mut(&mut k2);

        let mut a: Vec<(f64, f64)> = cell_ens
            .to_particles()
            .iter()
            .map(|p| (p.weight, p.gamma))
            .collect();
        let mut b: Vec<(f64, f64)> = aos.as_slice().iter().map(|p| (p.weight, p.gamma)).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn occupancy_stats() {
        let ens = CellEnsemble::from_particles(grid(), random_particles(512, 5));
        let (min, mean, max) = ens.occupancy();
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(min <= 1 && max >= 1);
        assert!(!ens.is_empty());
        assert_eq!(ens.cell_count(), 512);
        assert_eq!(ens.grid().cell_count(), 512);
        assert!(!ens.cell(0).is_empty() || ens.cell_len(0) == 0);
    }
}

//! Periodic particle sorting for cache locality (paper §3).
//!
//! Hi-Chi stores the whole ensemble in one array and "periodically sorts the
//! array of particles in order to improve cache locality". This module
//! provides the two usual orderings:
//!
//! * linear **cell index** on a regular grid (counting sort, O(n)), and
//! * **Morton (Z-order) code** sorting, which also keeps neighbouring cells
//!   close in memory.

use crate::view::{ParticleAccess, ParticleStore};
use pic_math::{Real, Vec3};

/// A regular grid of sorting cells over an axis-aligned domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellGrid {
    /// Lower corner of the domain, cm.
    pub min: Vec3<f64>,
    /// Upper corner of the domain, cm.
    pub max: Vec3<f64>,
    /// Number of cells along each axis.
    pub cells: [usize; 3],
}

impl CellGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if any extent is non-positive or any cell count is zero.
    pub fn new(min: Vec3<f64>, max: Vec3<f64>, cells: [usize; 3]) -> CellGrid {
        assert!(
            max.x > min.x && max.y > min.y && max.z > min.z,
            "CellGrid: empty domain"
        );
        assert!(
            cells.iter().all(|&c| c > 0),
            "CellGrid: zero cells along an axis"
        );
        CellGrid { min, max, cells }
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells[0] * self.cells[1] * self.cells[2]
    }

    /// Integer cell coordinates of a position (clamped into the domain).
    pub fn cell_coords(&self, pos: Vec3<f64>) -> [usize; 3] {
        let mut out = [0usize; 3];
        let min = self.min.to_array();
        let max = self.max.to_array();
        let p = pos.to_array();
        for d in 0..3 {
            let frac = (p[d] - min[d]) / (max[d] - min[d]);
            let i = (frac * self.cells[d] as f64).floor();
            out[d] = (i.max(0.0) as usize).min(self.cells[d] - 1);
        }
        out
    }

    /// Linear (x-fastest) cell index of a position.
    pub fn cell_index(&self, pos: Vec3<f64>) -> usize {
        let [i, j, k] = self.cell_coords(pos);
        (k * self.cells[1] + j) * self.cells[0] + i
    }

    /// Morton (Z-order) code of a position's cell.
    pub fn morton_index(&self, pos: Vec3<f64>) -> u64 {
        let [i, j, k] = self.cell_coords(pos);
        morton3(i as u32, j as u32, k as u32)
    }
}

/// Interleaves the low 21 bits of three coordinates into a Morton code.
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        // Spreads the low 21 bits of v so that there are two zero bits
        // between consecutive input bits (standard magic-number dilation).
        let mut x = (v as u64) & 0x1f_ffff;
        x = (x | (x << 32)) & 0x1f00000000ffff;
        x = (x | (x << 16)) & 0x1f0000ff0000ff;
        x = (x | (x << 8)) & 0x100f00f00f00f00f;
        x = (x | (x << 4)) & 0x10c30c30c30c30c3;
        x = (x | (x << 2)) & 0x1249249249249249;
        x
    }
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

/// Sorts the ensemble by linear cell index using a counting sort (stable,
/// O(n + cells)). This is the "periodic sort" step of Hi-Chi's single-array
/// ensemble organisation.
pub fn sort_by_cell<R: Real, S: ParticleStore<R>>(store: &mut S, grid: &CellGrid) {
    let n = store.len();
    if n <= 1 {
        return;
    }
    let mut keys = Vec::with_capacity(n);
    for i in 0..n {
        keys.push(grid.cell_index(store.get(i).position.to_f64()));
    }
    let mut counts = vec![0usize; grid.cell_count() + 1];
    for &k in &keys {
        counts[k + 1] += 1;
    }
    for c in 1..counts.len() {
        counts[c] += counts[c - 1];
    }
    let particles = store.to_particles();
    let mut next = counts;
    for (p, &k) in particles.iter().zip(&keys) {
        store.set(next[k], p);
        next[k] += 1;
    }
}

/// Sorts the ensemble by Morton code (comparison sort, O(n log n)).
pub fn sort_by_morton<R: Real, S: ParticleStore<R>>(store: &mut S, grid: &CellGrid) {
    let perm = morton_perm(store, grid);
    apply_perm(store, &perm);
}

/// The stable Morton permutation of `store`: `perm[dst] = src` — the
/// particle that lands at position `dst` after a Morton sort. Identity
/// for stores of fewer than two particles.
///
/// Exposing the permutation (instead of only sorting in place) lets a
/// caller that must *restore* the original order — e.g. a shard sub-job
/// whose dump bytes must stay bitwise shard-count-invariant — sort for
/// locality, run, and then undo via [`invert_perm`] + [`apply_perm`].
pub fn morton_perm<R: Real, A: ParticleAccess<R>>(store: &A, grid: &CellGrid) -> Vec<usize> {
    let n = store.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let mut order: Vec<(u64, usize)> = (0..n)
        .map(|i| (grid.morton_index(store.get(i).position.to_f64()), i))
        .collect();
    order.sort_by_key(|&(key, idx)| (key, idx));
    order.into_iter().map(|(_, src)| src).collect()
}

/// Reorders `store` so that position `dst` holds the particle that was
/// at `perm[dst]`.
///
/// # Panics
///
/// Panics when `perm.len() != store.len()` (an out-of-range `perm`
/// entry panics on the indexing below; a non-permutation silently
/// duplicates particles — callers pass permutations from
/// [`morton_perm`] / [`invert_perm`]).
pub fn apply_perm<R: Real, S: ParticleStore<R>>(store: &mut S, perm: &[usize]) {
    assert_eq!(perm.len(), store.len(), "permutation length mismatch");
    let particles = store.to_particles();
    for (dst, &src) in perm.iter().enumerate() {
        store.set(dst, &particles[src]);
    }
}

/// The inverse permutation: applying [`apply_perm`] with `perm` and then
/// with `invert_perm(perm)` restores the original order.
///
/// # Panics
///
/// Panics when `perm` is not a permutation of `0..perm.len()`.
pub fn invert_perm(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (dst, &src) in perm.iter().enumerate() {
        assert!(
            src < perm.len() && inv[src] == usize::MAX,
            "invert_perm: not a permutation"
        );
        inv[src] = dst;
    }
    inv
}

/// Schedules the "periodic" in Hi-Chi's periodic sorting: counts steps and
/// triggers a cell sort every `interval` calls.
///
/// # Example
///
/// ```
/// use pic_math::Vec3;
/// use pic_particles::sort::{CellGrid, PeriodicSorter};
/// use pic_particles::{AosEnsemble, Particle, ParticleStore};
///
/// let grid = CellGrid::new(Vec3::zero(), Vec3::splat(4.0), [4, 4, 4]);
/// let mut sorter = PeriodicSorter::new(grid, 10);
/// let mut ens = AosEnsemble::<f64>::from_particles(
///     (0..5).map(|_| Particle::default()));
/// let mut sorts = 0;
/// for _step in 0..25 {
///     if sorter.maybe_sort(&mut ens) {
///         sorts += 1;
///     }
/// }
/// assert_eq!(sorts, 2); // after steps 10 and 20
/// ```
#[derive(Clone, Debug)]
pub struct PeriodicSorter {
    grid: CellGrid,
    interval: usize,
    order: SortOrder,
    steps: usize,
    sorts: usize,
}

/// Which ordering a [`PeriodicSorter`] applies.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub enum SortOrder {
    /// Linear cell index (counting sort, the Hi-Chi default).
    #[default]
    Cell,
    /// Morton (Z-order) code — neighbouring cells also stay close in
    /// memory, so precalculated-field lookups become streaming reads.
    Morton,
}

impl PeriodicSorter {
    /// Creates a sorter that cell-sorts every `interval` steps.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(grid: CellGrid, interval: usize) -> PeriodicSorter {
        PeriodicSorter::with_order(grid, interval, SortOrder::Cell)
    }

    /// Creates a sorter with an explicit ordering.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_order(grid: CellGrid, interval: usize, order: SortOrder) -> PeriodicSorter {
        assert!(interval > 0, "PeriodicSorter: zero interval");
        PeriodicSorter {
            grid,
            interval,
            order,
            steps: 0,
            sorts: 0,
        }
    }

    /// Sorts `store` immediately with this sorter's ordering, without
    /// touching the step counter — the "sort once before the run" mode
    /// used by the bench harness (re-sorting mid-run would desynchronize
    /// per-particle side arrays such as precalculated fields).
    pub fn sort_now<R: Real, S: ParticleStore<R>>(&mut self, store: &mut S) {
        match self.order {
            SortOrder::Cell => sort_by_cell(store, &self.grid),
            SortOrder::Morton => sort_by_morton(store, &self.grid),
        }
        self.sorts += 1;
    }

    /// Counts one step; sorts (and returns `true`) on every
    /// `interval`-th call.
    pub fn maybe_sort<R: Real, S: ParticleStore<R>>(&mut self, store: &mut S) -> bool {
        self.steps += 1;
        if self.steps.is_multiple_of(self.interval) {
            self.sort_now(store);
            true
        } else {
            false
        }
    }

    /// The sorting grid.
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// The ordering this sorter applies.
    pub fn order(&self) -> SortOrder {
        self.order
    }

    /// Number of sorts performed so far.
    pub fn sorts(&self) -> usize {
        self.sorts
    }

    /// Steps counted so far.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// Measures how well an ensemble is cell-ordered: the fraction of adjacent
/// particle pairs whose cell index does not decrease. 1.0 ⇔ fully sorted.
pub fn cell_order_fraction<R: Real, S: ParticleAccess<R>>(store: &S, grid: &CellGrid) -> f64 {
    let n = store.len();
    if n < 2 {
        return 1.0;
    }
    let mut ordered = 0usize;
    let mut prev = grid.cell_index(store.get(0).position.to_f64());
    for i in 1..n {
        let k = grid.cell_index(store.get(i).position.to_f64());
        if k >= prev {
            ordered += 1;
        }
        prev = k;
    }
    // lint: allow(precision-pollution): sortedness metric over integer
    // counts, outside the Real-typed kernel math.
    ordered as f64 / (n - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aos::AosEnsemble;
    use crate::init::{sample_box, BoxDist};
    use crate::particle::Particle;
    use crate::soa::SoaEnsemble;
    use crate::species::SpeciesId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> CellGrid {
        CellGrid::new(Vec3::zero(), Vec3::splat(1.0), [4, 4, 4])
    }

    fn random_ensemble<S: ParticleStore<f64>>(n: usize, seed: u64) -> S {
        let mut rng = StdRng::seed_from_u64(seed);
        let bounds = BoxDist {
            min: Vec3::zero(),
            max: Vec3::splat(1.0),
        };
        let mut s = S::default();
        for i in 0..n {
            let mut p = Particle::at_rest(sample_box(&bounds, &mut rng), 1.0, SpeciesId(0));
            p.weight = i as f64; // tag to track identity through the sort
            s.push(p);
        }
        s
    }

    #[test]
    fn cell_index_corners() {
        let g = grid();
        assert_eq!(g.cell_index(Vec3::zero()), 0);
        assert_eq!(g.cell_index(Vec3::splat(0.999)), 63);
        // Out-of-domain positions clamp instead of panicking.
        assert_eq!(g.cell_index(Vec3::splat(5.0)), 63);
        assert_eq!(g.cell_index(Vec3::splat(-5.0)), 0);
    }

    #[test]
    fn cell_index_is_x_fastest() {
        let g = grid();
        let dx = 0.25;
        let a = g.cell_index(Vec3::new(0.1, 0.1, 0.1));
        let b = g.cell_index(Vec3::new(0.1 + dx, 0.1, 0.1));
        let c = g.cell_index(Vec3::new(0.1, 0.1 + dx, 0.1));
        let d = g.cell_index(Vec3::new(0.1, 0.1, 0.1 + dx));
        assert_eq!(b, a + 1);
        assert_eq!(c, a + 4);
        assert_eq!(d, a + 16);
    }

    #[test]
    fn morton3_small_values() {
        assert_eq!(morton3(0, 0, 0), 0);
        assert_eq!(morton3(1, 0, 0), 0b001);
        assert_eq!(morton3(0, 1, 0), 0b010);
        assert_eq!(morton3(0, 0, 1), 0b100);
        assert_eq!(morton3(1, 1, 1), 0b111);
        assert_eq!(morton3(2, 0, 0), 0b001000);
        // x = 11b → bits 0,3; y = 101b → bits 1,7; z = 001b → bit 2.
        assert_eq!(morton3(3, 5, 1), 0b1000_1111);
    }

    #[test]
    fn morton3_is_monotonic_per_axis() {
        for v in 0..64u32 {
            assert!(morton3(v + 1, 0, 0) > morton3(v, 0, 0));
            assert!(morton3(0, v + 1, 0) > morton3(0, v, 0));
            assert!(morton3(0, 0, v + 1) > morton3(0, 0, v));
        }
    }

    #[test]
    fn counting_sort_orders_cells_aos() {
        let mut ens: AosEnsemble<f64> = random_ensemble(500, 11);
        let g = grid();
        assert!(cell_order_fraction(&ens, &g) < 0.9);
        sort_by_cell(&mut ens, &g);
        assert_eq!(cell_order_fraction(&ens, &g), 1.0);
        assert_eq!(ens.len(), 500);
    }

    #[test]
    fn counting_sort_orders_cells_soa() {
        let mut ens: SoaEnsemble<f64> = random_ensemble(500, 12);
        let g = grid();
        sort_by_cell(&mut ens, &g);
        assert_eq!(cell_order_fraction(&ens, &g), 1.0);
    }

    #[test]
    fn counting_sort_preserves_multiset() {
        let mut ens: AosEnsemble<f64> = random_ensemble(200, 13);
        let g = grid();
        let mut before: Vec<f64> = ens.as_slice().iter().map(|p| p.weight).collect();
        sort_by_cell(&mut ens, &g);
        let mut after: Vec<f64> = ens.as_slice().iter().map(|p| p.weight).collect();
        before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(before, after);
    }

    #[test]
    fn counting_sort_is_stable() {
        // Two particles in the same cell keep their relative order.
        let g = grid();
        let mut ens = AosEnsemble::<f64>::new();
        for (i, x) in [0.9, 0.05, 0.06, 0.07].iter().enumerate() {
            let mut p = Particle::at_rest(Vec3::new(*x, 0.0, 0.0), 1.0, SpeciesId(0));
            p.weight = i as f64;
            ens.push(p);
        }
        sort_by_cell(&mut ens, &g);
        let weights: Vec<f64> = ens.as_slice().iter().map(|p| p.weight).collect();
        assert_eq!(weights, vec![1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn morton_sort_orders_by_morton_code() {
        let mut ens: SoaEnsemble<f64> = random_ensemble(300, 14);
        let g = grid();
        sort_by_morton(&mut ens, &g);
        let mut prev = 0u64;
        for i in 0..ens.len() {
            let code = g.morton_index(ens.get(i).position.to_f64());
            assert!(code >= prev);
            prev = code;
        }
    }

    #[test]
    fn sorting_tiny_ensembles_is_a_noop() {
        let g = grid();
        let mut empty = AosEnsemble::<f64>::new();
        sort_by_cell(&mut empty, &g);
        sort_by_morton(&mut empty, &g);
        assert!(empty.is_empty());
        assert_eq!(cell_order_fraction(&empty, &g), 1.0);
    }

    #[test]
    fn periodic_sorter_counts_and_sorts() {
        let g = grid();
        let mut sorter = PeriodicSorter::new(g, 5);
        let mut ens: AosEnsemble<f64> = random_ensemble(200, 21);
        assert!(cell_order_fraction(&ens, &g) < 0.9);
        let mut fired = 0;
        for _ in 0..12 {
            if sorter.maybe_sort(&mut ens) {
                fired += 1;
                assert_eq!(cell_order_fraction(&ens, &g), 1.0);
            }
        }
        assert_eq!(fired, 2);
        assert_eq!(sorter.sorts(), 2);
        assert_eq!(sorter.steps(), 12);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn degenerate_grid_panics() {
        let _ = CellGrid::new(Vec3::zero(), Vec3::zero(), [1, 1, 1]);
    }

    #[test]
    fn morton_sort_is_stable() {
        // Particles with equal Morton codes keep their original relative
        // order (the sort key is (code, original index)).
        let g = grid();
        let mut ens = AosEnsemble::<f64>::new();
        for (i, x) in [0.9, 0.05, 0.06, 0.07].iter().enumerate() {
            let mut p = Particle::at_rest(Vec3::new(*x, 0.0, 0.0), 1.0, SpeciesId(0));
            p.weight = i as f64;
            ens.push(p);
        }
        sort_by_morton(&mut ens, &g);
        let weights: Vec<f64> = ens.as_slice().iter().map(|p| p.weight).collect();
        assert_eq!(weights, vec![1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn morton_sort_is_a_permutation_with_attached_attributes() {
        // Weights and species ids travel with their particle: the sorted
        // ensemble is exactly a permutation of the input records.
        let mut rng = StdRng::seed_from_u64(31);
        let bounds = BoxDist {
            min: Vec3::zero(),
            max: Vec3::splat(1.0),
        };
        let mut ens = SoaEnsemble::<f64>::new();
        for i in 0..257 {
            let mut p = Particle::at_rest(sample_box(&bounds, &mut rng), 1.0, SpeciesId(0));
            p.weight = i as f64;
            p.species = SpeciesId((i % 5) as u16);
            p.momentum = Vec3::new(i as f64, -(i as f64), 0.5 * i as f64);
            ens.push(p);
        }
        let before = ens.to_particles();
        sort_by_morton(&mut ens, &grid());
        let after = ens.to_particles();
        assert_eq!(after.len(), before.len());
        // Each output record must be byte-for-byte one of the inputs, with
        // its weight/species/momentum intact; weights are unique, so they
        // identify the source particle.
        for p in &after {
            let src = &before[p.weight as usize];
            assert_eq!(p, src, "particle with weight {} was altered", p.weight);
        }
        // And every source weight appears exactly once.
        let mut seen: Vec<f64> = after.iter().map(|p| p.weight).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..257).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn morton_perm_round_trips_through_its_inverse() {
        let g = grid();
        let mut ens: SoaEnsemble<f64> = random_ensemble(300, 61);
        let before = ens.to_particles();
        let perm = morton_perm(&ens, &g);
        apply_perm(&mut ens, &perm);
        // The permuted store is exactly the in-place Morton sort...
        let mut reference: SoaEnsemble<f64> = SoaEnsemble::from_particles(before.iter().cloned());
        sort_by_morton(&mut reference, &g);
        assert_eq!(ens.to_particles(), reference.to_particles());
        // ...and the inverse restores the original order bitwise.
        apply_perm(&mut ens, &invert_perm(&perm));
        assert_eq!(ens.to_particles(), before);
    }

    #[test]
    fn tiny_perms_are_identity() {
        let g = grid();
        let empty = SoaEnsemble::<f64>::new();
        assert!(morton_perm(&empty, &g).is_empty());
        let one: AosEnsemble<f64> = random_ensemble(1, 62);
        assert_eq!(morton_perm(&one, &g), vec![0]);
        assert_eq!(invert_perm(&[]), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invert_perm_rejects_duplicates() {
        let _ = invert_perm(&[0, 0, 2]);
    }

    #[test]
    fn order_fraction_bounded_on_sorted_and_shuffled() {
        let g = grid();
        let mut ens: SoaEnsemble<f64> = random_ensemble(400, 41);
        let shuffled = cell_order_fraction(&ens, &g);
        assert!((0.0..=1.0).contains(&shuffled), "{shuffled}");
        sort_by_morton(&mut ens, &g);
        let sorted = cell_order_fraction(&ens, &g);
        assert!((0.0..=1.0).contains(&sorted), "{sorted}");
        // Morton order is not linear cell order, but it is far more
        // cell-coherent than a random shuffle.
        assert!(sorted > shuffled);
        sort_by_cell(&mut ens, &g);
        assert_eq!(cell_order_fraction(&ens, &g), 1.0);
    }

    #[test]
    fn periodic_sorter_morton_mode() {
        let g = grid();
        let mut sorter = PeriodicSorter::with_order(g, 3, SortOrder::Morton);
        assert_eq!(sorter.order(), SortOrder::Morton);
        assert_eq!(sorter.grid(), &g);
        let mut ens: SoaEnsemble<f64> = random_ensemble(300, 51);
        sorter.sort_now(&mut ens);
        assert_eq!(sorter.sorts(), 1);
        assert_eq!(sorter.steps(), 0); // sort_now leaves the schedule alone
        let mut prev = 0u64;
        for i in 0..ens.len() {
            let code = g.morton_index(ens.get(i).position.to_f64());
            assert!(code >= prev);
            prev = code;
        }
        for _ in 0..3 {
            sorter.maybe_sort(&mut ens);
        }
        assert_eq!(sorter.sorts(), 2);
        assert_eq!(PeriodicSorter::new(g, 3).order(), SortOrder::Cell);
    }
}

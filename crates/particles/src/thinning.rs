//! Particle population control: thinning and merging.
//!
//! Long laser–plasma runs produce ever more macroparticles (ionization,
//! pair cascades — the physics behind the paper's vacuum-breakdown
//! programme); production PIC codes periodically *resample* the ensemble
//! to keep the push cost bounded. Two standard schemes:
//!
//! * [`thin_random`] — unbiased random thinning: keep each particle with
//!   probability `keep`, re-weighting survivors by `1/keep`. Conserves
//!   every moment of the distribution in expectation.
//! * [`merge_pairs`] — deterministic pairwise merging within sorting
//!   cells: two particles become one carrying the summed weight and the
//!   weight-averaged position/momentum. Conserves charge and momentum
//!   exactly (energy only approximately — documented trade-off).

use crate::particle::{lorentz_gamma, Particle};
use crate::sort::CellGrid;
use crate::species::SpeciesTable;
use crate::view::ParticleStore;
use pic_math::Real;
use rand::Rng;

/// Randomly thins the ensemble: each particle survives with probability
/// `keep`; survivors' weights are scaled by `1/keep` so all distribution
/// moments are preserved in expectation. Returns the number removed.
///
/// # Panics
///
/// Panics if `keep` is not in `(0, 1]`.
pub fn thin_random<R, S, G>(store: &mut S, keep: f64, rng: &mut G) -> usize
where
    R: Real,
    S: ParticleStore<R>,
    G: Rng + ?Sized,
{
    assert!(
        keep > 0.0 && keep <= 1.0,
        "thin_random: keep must be in (0, 1]"
    );
    let scale = R::from_f64(1.0 / keep);
    let mut removed = 0;
    let mut i = 0;
    while i < store.len() {
        if rng.gen::<f64>() < keep {
            let mut p = store.get(i);
            p.weight *= scale;
            store.set(i, &p);
            i += 1;
        } else {
            store.swap_remove(i);
            removed += 1;
        }
    }
    removed
}

/// Merges same-species particle pairs within each sorting cell: each pair
/// is replaced by one particle at the weight-averaged position with the
/// summed momentum-weighted... precisely:
///
/// * weight: `w = w₁ + w₂` (charge conserved exactly),
/// * momentum: `p = (w₁p₁ + w₂p₂)/w`, each merged particle carrying `w`
///   (total momentum conserved exactly),
/// * position: weight-averaged (dipole moment of the pair preserved),
/// * γ recomputed from the merged momentum (kinetic energy is *not*
///   exactly conserved — merging is lossy by construction).
///
/// Odd particles per cell are left untouched. Returns the number of
/// particles removed.
pub fn merge_pairs<R, S>(store: &mut S, grid: &CellGrid, table: &SpeciesTable<R>) -> usize
where
    R: Real,
    S: ParticleStore<R>,
{
    // Bucket indices by (cell, species).
    let n = store.len();
    let mut buckets: std::collections::HashMap<(usize, u16), Vec<usize>> =
        std::collections::HashMap::new();
    for i in 0..n {
        let p = store.get(i);
        let cell = grid.cell_index(p.position.to_f64());
        buckets.entry((cell, p.species.0)).or_default().push(i);
    }

    // Build the merged ensemble.
    let mut merged: Vec<Particle<R>> = Vec::with_capacity(n);
    let mut removed = 0;
    for ((_, species), indices) in buckets {
        let mass = table.get(crate::species::SpeciesId(species)).mass;
        let mut it = indices.chunks_exact(2);
        for pair in &mut it {
            let a = store.get(pair[0]);
            let b = store.get(pair[1]);
            let w = a.weight + b.weight;
            let inv_w = w.recip();
            let momentum = (a.momentum * a.weight + b.momentum * b.weight) * inv_w;
            let position = (a.position * a.weight + b.position * b.weight) * inv_w;
            merged.push(Particle {
                position,
                momentum,
                weight: w,
                gamma: lorentz_gamma(momentum, mass),
                species: a.species,
            });
            removed += 1;
        }
        for &i in it.remainder() {
            merged.push(store.get(i));
        }
    }

    store.clear();
    for p in merged {
        store.push(p);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aos::AosEnsemble;
    use crate::init::{sample_box, BoxDist};
    use crate::soa::SoaEnsemble;
    use crate::species::SpeciesId;
    use crate::view::ParticleAccess;
    use pic_math::constants::{ELECTRON_MASS, LIGHT_VELOCITY};
    use pic_math::Vec3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_ensemble<S: ParticleStore<f64>>(n: usize, seed: u64) -> S {
        let mut rng = StdRng::seed_from_u64(seed);
        let bounds = BoxDist {
            min: Vec3::zero(),
            max: Vec3::splat(8.0),
        };
        let mc = ELECTRON_MASS * LIGHT_VELOCITY;
        S::from_particles((0..n).map(|_| {
            Particle::new(
                sample_box(&bounds, &mut rng),
                Vec3::new(
                    rng.gen_range(-1.0..1.0) * mc,
                    rng.gen_range(-1.0..1.0) * mc,
                    rng.gen_range(-1.0..1.0) * mc,
                ),
                rng.gen_range(0.5..2.0),
                SpeciesId(0),
                ELECTRON_MASS,
            )
        }))
    }

    fn total_weight<A: ParticleAccess<f64>>(s: &A) -> f64 {
        (0..s.len()).map(|i| s.get(i).weight.to_f64()).sum()
    }

    fn total_momentum<A: ParticleAccess<f64>>(s: &A) -> Vec3<f64> {
        (0..s.len()).fold(Vec3::zero(), |acc, i| {
            let p = s.get(i);
            acc + p.momentum.to_f64() * p.weight.to_f64()
        })
    }

    #[test]
    fn thinning_preserves_weight_statistically() {
        let mut ens: AosEnsemble<f64> = random_ensemble(20_000, 1);
        let w0 = total_weight(&ens);
        let mut rng = StdRng::seed_from_u64(2);
        let removed = thin_random(&mut ens, 0.25, &mut rng);
        let kept_frac = ens.len() as f64 / 20_000.0;
        assert!((kept_frac - 0.25).abs() < 0.02, "kept {kept_frac}");
        assert_eq!(removed + ens.len(), 20_000);
        let w1 = total_weight(&ens);
        assert!(
            (w1 - w0).abs() / w0 < 0.03,
            "weight drift {}",
            (w1 - w0) / w0
        );
    }

    #[test]
    fn thinning_with_keep_one_is_identity() {
        let mut ens: SoaEnsemble<f64> = random_ensemble(100, 3);
        let before = ens.to_particles();
        let removed = thin_random(&mut ens, 1.0, &mut StdRng::seed_from_u64(4));
        assert_eq!(removed, 0);
        assert_eq!(ens.to_particles(), before);
    }

    #[test]
    fn merge_conserves_charge_and_momentum_exactly() {
        let grid = CellGrid::new(Vec3::zero(), Vec3::splat(8.0), [4, 4, 4]);
        let table = SpeciesTable::<f64>::with_standard_species();
        let mut ens: AosEnsemble<f64> = random_ensemble(501, 5);
        let w0 = total_weight(&ens);
        let p0 = total_momentum(&ens);
        let removed = merge_pairs(&mut ens, &grid, &table);
        assert!(removed > 150, "merged {removed}");
        assert_eq!(ens.len(), 501 - removed);
        let w1 = total_weight(&ens);
        let p1 = total_momentum(&ens);
        assert!((w1 - w0).abs() / w0 < 1e-12);
        assert!((p1 - p0).norm() / p0.norm().max(1e-30) < 1e-9);
        // γ caches stay consistent.
        for i in 0..ens.len() {
            let p = ens.get(i);
            let expect = lorentz_gamma(p.momentum, ELECTRON_MASS);
            assert!((p.gamma - expect).abs() / expect < 1e-12);
        }
    }

    #[test]
    fn merge_keeps_particles_near_their_cell() {
        let grid = CellGrid::new(Vec3::zero(), Vec3::splat(8.0), [8, 8, 8]);
        let table = SpeciesTable::<f64>::with_standard_species();
        let mut ens: SoaEnsemble<f64> = random_ensemble(400, 6);
        merge_pairs(&mut ens, &grid, &table);
        // Weight-averaged positions of two same-cell particles stay inside
        // the (convex) cell.
        for i in 0..ens.len() {
            let pos = ens.get(i).position;
            assert!((0.0..8.0).contains(&pos.x));
            assert!((0.0..8.0).contains(&pos.y));
            assert!((0.0..8.0).contains(&pos.z));
        }
    }

    #[test]
    fn merge_on_singletons_is_identity() {
        let grid = CellGrid::new(Vec3::zero(), Vec3::splat(8.0), [8, 8, 8]);
        let table = SpeciesTable::<f64>::with_standard_species();
        // One particle per far-apart cell: nothing to merge.
        let mut ens = AosEnsemble::<f64>::new();
        for i in 0..4 {
            ens.push(Particle::at_rest(
                Vec3::new(i as f64 * 2.0 + 0.5, 0.5, 0.5),
                1.0,
                SpeciesId(0),
            ));
        }
        let removed = merge_pairs(&mut ens, &grid, &table);
        assert_eq!(removed, 0);
        assert_eq!(ens.len(), 4);
    }

    #[test]
    #[should_panic(expected = "keep must be in")]
    fn bad_keep_fraction_panics() {
        let mut ens: AosEnsemble<f64> = random_ensemble(10, 7);
        let _ = thin_random(&mut ens, 0.0, &mut StdRng::seed_from_u64(8));
    }
}

//! Structure-of-arrays ensemble (paper §3, the `SoA` pattern).

use crate::particle::Particle;
use crate::species::SpeciesId;
use crate::view::{Layout, ParticleAccess, ParticleStore, ParticleView};
use pic_math::{Real, Vec3};

/// The SoA ensemble: one contiguous array per particle attribute.
/// Unit-stride vector loads; lower cache locality per particle (paper §3's
/// trade-off).
///
/// # Example
///
/// ```
/// use pic_particles::{Particle, ParticleAccess, ParticleStore, SoaEnsemble};
///
/// let mut ens = SoaEnsemble::<f32>::new();
/// ens.push(Particle::default());
/// assert_eq!(ens.len(), 1);
/// assert_eq!(ens.xs().len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SoaEnsemble<R> {
    x: Vec<R>,
    y: Vec<R>,
    z: Vec<R>,
    px: Vec<R>,
    py: Vec<R>,
    pz: Vec<R>,
    weight: Vec<R>,
    gamma: Vec<R>,
    species: Vec<SpeciesId>,
}

impl<R: Real> SoaEnsemble<R> {
    /// Creates an empty ensemble.
    pub fn new() -> SoaEnsemble<R> {
        SoaEnsemble::default()
    }

    /// Creates an empty ensemble with room for `capacity` particles.
    pub fn with_capacity(capacity: usize) -> SoaEnsemble<R> {
        let mut s = SoaEnsemble::default();
        s.reserve(capacity);
        s
    }

    /// The x-coordinate array (for diagnostics and vectorized kernels).
    pub fn xs(&self) -> &[R] {
        &self.x
    }

    /// The y-coordinate array.
    pub fn ys(&self) -> &[R] {
        &self.y
    }

    /// The z-coordinate array.
    pub fn zs(&self) -> &[R] {
        &self.z
    }

    /// The momentum-x array.
    pub fn pxs(&self) -> &[R] {
        &self.px
    }

    /// The momentum-y array.
    pub fn pys(&self) -> &[R] {
        &self.py
    }

    /// The momentum-z array.
    pub fn pzs(&self) -> &[R] {
        &self.pz
    }

    /// The weight array.
    pub fn weights(&self) -> &[R] {
        &self.weight
    }

    /// The Lorentz-factor array.
    pub fn gammas(&self) -> &[R] {
        &self.gamma
    }

    /// The species-id array.
    pub fn species_ids(&self) -> &[SpeciesId] {
        &self.species
    }

    fn full_chunk(&mut self) -> SoaChunkMut<'_, R> {
        SoaChunkMut {
            offset: 0,
            x: &mut self.x,
            y: &mut self.y,
            z: &mut self.z,
            px: &mut self.px,
            py: &mut self.py,
            pz: &mut self.pz,
            weight: &mut self.weight,
            gamma: &mut self.gamma,
            species: &mut self.species,
        }
    }
}

impl<R: Real> FromIterator<Particle<R>> for SoaEnsemble<R> {
    fn from_iter<I: IntoIterator<Item = Particle<R>>>(iter: I) -> Self {
        let mut s = SoaEnsemble::new();
        for p in iter {
            s.push(p);
        }
        s
    }
}

impl<R: Real> Extend<Particle<R>> for SoaEnsemble<R> {
    fn extend<I: IntoIterator<Item = Particle<R>>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

/// Mutable view of one particle inside a SoA collection — the reference-
/// holding `ParticleProxy` of the paper, field for field.
#[derive(Debug)]
pub struct SoaRefMut<'a, R> {
    x: &'a mut R,
    y: &'a mut R,
    z: &'a mut R,
    px: &'a mut R,
    py: &'a mut R,
    pz: &'a mut R,
    weight: &'a mut R,
    gamma: &'a mut R,
    species: &'a mut SpeciesId,
}

impl<R: Real> ParticleView<R> for SoaRefMut<'_, R> {
    #[inline(always)]
    fn position(&self) -> Vec3<R> {
        Vec3::new(*self.x, *self.y, *self.z)
    }
    #[inline(always)]
    fn momentum(&self) -> Vec3<R> {
        Vec3::new(*self.px, *self.py, *self.pz)
    }
    #[inline(always)]
    fn weight(&self) -> R {
        *self.weight
    }
    #[inline(always)]
    fn gamma(&self) -> R {
        *self.gamma
    }
    #[inline(always)]
    fn species(&self) -> SpeciesId {
        *self.species
    }
    #[inline(always)]
    fn set_position(&mut self, v: Vec3<R>) {
        *self.x = v.x;
        *self.y = v.y;
        *self.z = v.z;
    }
    #[inline(always)]
    fn set_momentum(&mut self, v: Vec3<R>) {
        *self.px = v.x;
        *self.py = v.y;
        *self.pz = v.z;
    }
    #[inline(always)]
    fn set_weight(&mut self, w: R) {
        *self.weight = w;
    }
    #[inline(always)]
    fn set_gamma(&mut self, g: R) {
        *self.gamma = g;
    }
    #[inline(always)]
    fn set_species(&mut self, s: SpeciesId) {
        *self.species = s;
    }
}

/// A disjoint mutable chunk of a [`SoaEnsemble`].
#[derive(Debug)]
pub struct SoaChunkMut<'a, R> {
    offset: usize,
    x: &'a mut [R],
    y: &'a mut [R],
    z: &'a mut [R],
    px: &'a mut [R],
    py: &'a mut [R],
    pz: &'a mut [R],
    weight: &'a mut [R],
    gamma: &'a mut [R],
    species: &'a mut [SpeciesId],
}

impl<'a, R: Real> SoaChunkMut<'a, R> {
    /// Assembles a chunk view from externally owned component columns —
    /// the seam the device backend uses to run the SoA fast path over
    /// USM-staged buffers. `offset` is the global index of lane 0 (so
    /// per-particle side tables such as precalculated fields stay
    /// addressable); all columns must have equal length.
    #[allow(clippy::too_many_arguments)]
    pub fn from_columns(
        offset: usize,
        x: &'a mut [R],
        y: &'a mut [R],
        z: &'a mut [R],
        px: &'a mut [R],
        py: &'a mut [R],
        pz: &'a mut [R],
        weight: &'a mut [R],
        gamma: &'a mut [R],
        species: &'a mut [SpeciesId],
    ) -> SoaChunkMut<'a, R> {
        let n = x.len();
        assert!(
            y.len() == n
                && z.len() == n
                && px.len() == n
                && py.len() == n
                && pz.len() == n
                && weight.len() == n
                && gamma.len() == n
                && species.len() == n,
            "from_columns: all component columns must have equal length"
        );
        SoaChunkMut {
            offset,
            x,
            y,
            z,
            px,
            py,
            pz,
            weight,
            gamma,
            species,
        }
    }

    fn split_at(self, mid: usize) -> (SoaChunkMut<'a, R>, SoaChunkMut<'a, R>) {
        let (x0, x1) = self.x.split_at_mut(mid);
        let (y0, y1) = self.y.split_at_mut(mid);
        let (z0, z1) = self.z.split_at_mut(mid);
        let (px0, px1) = self.px.split_at_mut(mid);
        let (py0, py1) = self.py.split_at_mut(mid);
        let (pz0, pz1) = self.pz.split_at_mut(mid);
        let (w0, w1) = self.weight.split_at_mut(mid);
        let (g0, g1) = self.gamma.split_at_mut(mid);
        let (s0, s1) = self.species.split_at_mut(mid);
        (
            SoaChunkMut {
                offset: self.offset,
                x: x0,
                y: y0,
                z: z0,
                px: px0,
                py: py0,
                pz: pz0,
                weight: w0,
                gamma: g0,
                species: s0,
            },
            SoaChunkMut {
                offset: self.offset + mid,
                x: x1,
                y: y1,
                z: z1,
                px: px1,
                py: py1,
                pz: pz1,
                weight: w1,
                gamma: g1,
                species: s1,
            },
        )
    }

    fn reborrow(&mut self) -> SoaChunkMut<'_, R> {
        SoaChunkMut {
            offset: self.offset,
            x: &mut *self.x,
            y: &mut *self.y,
            z: &mut *self.z,
            px: &mut *self.px,
            py: &mut *self.py,
            pz: &mut *self.pz,
            weight: &mut *self.weight,
            gamma: &mut *self.gamma,
            species: &mut *self.species,
        }
    }
}

/// Direct mutable access to the component columns of a SoA collection,
/// for kernels that process whole lanes without per-particle views.
///
/// `base` is the index of the first lane relative to the owning ensemble
/// (0 for ensembles, the chunk offset for chunks), so kernels reading
/// per-particle side arrays (precalculated fields) can address them.
/// The weight column is omitted: the pushers never touch it, and leaving
/// it out keeps the hot loop's live-slice count minimal.
#[derive(Debug)]
pub struct SoaLanesMut<'a, R> {
    /// Global index of lane 0 in the owning ensemble.
    pub base: usize,
    /// Position x column.
    pub x: &'a mut [R],
    /// Position y column.
    pub y: &'a mut [R],
    /// Position z column.
    pub z: &'a mut [R],
    /// Momentum x column.
    pub px: &'a mut [R],
    /// Momentum y column.
    pub py: &'a mut [R],
    /// Momentum z column.
    pub pz: &'a mut [R],
    /// Cached Lorentz-factor column.
    pub gamma: &'a mut [R],
    /// Species-id column (read-only: pushers never change species).
    pub species: &'a [SpeciesId],
}

fn split_chunks<'a, R: Real>(full: SoaChunkMut<'a, R>, sizes: &[usize]) -> Vec<SoaChunkMut<'a, R>> {
    assert_eq!(
        sizes.iter().sum::<usize>(),
        full.x.len(),
        "split_sizes_mut: sizes must sum to the collection length"
    );
    let mut out = Vec::new();
    let mut rest = full;
    for &size in sizes {
        if size == 0 {
            continue;
        }
        let (head, tail) = rest.split_at(size);
        out.push(head);
        rest = tail;
    }
    out
}

macro_rules! soa_access_body {
    () => {
        type ViewMut<'v>
            = SoaRefMut<'v, R>
        where
            Self: 'v;
        type ChunkMut<'v>
            = SoaChunkMut<'v, R>
        where
            Self: 'v;

        fn layout(&self) -> Layout {
            Layout::Soa
        }

        fn len(&self) -> usize {
            self.x.len()
        }

        #[inline(always)]
        fn get(&self, i: usize) -> Particle<R> {
            Particle {
                position: Vec3::new(self.x[i], self.y[i], self.z[i]),
                momentum: Vec3::new(self.px[i], self.py[i], self.pz[i]),
                weight: self.weight[i],
                gamma: self.gamma[i],
                species: self.species[i],
            }
        }

        #[inline(always)]
        fn set(&mut self, i: usize, p: &Particle<R>) {
            self.x[i] = p.position.x;
            self.y[i] = p.position.y;
            self.z[i] = p.position.z;
            self.px[i] = p.momentum.x;
            self.py[i] = p.momentum.y;
            self.pz[i] = p.momentum.z;
            self.weight[i] = p.weight;
            self.gamma[i] = p.gamma;
            self.species[i] = p.species;
        }

        #[inline(always)]
        fn view_mut(&mut self, i: usize) -> Self::ViewMut<'_> {
            SoaRefMut {
                x: &mut self.x[i],
                y: &mut self.y[i],
                z: &mut self.z[i],
                px: &mut self.px[i],
                py: &mut self.py[i],
                pz: &mut self.pz[i],
                weight: &mut self.weight[i],
                gamma: &mut self.gamma[i],
                species: &mut self.species[i],
            }
        }
    };
}

impl<R: Real> ParticleAccess<R> for SoaEnsemble<R> {
    soa_access_body!();

    fn soa_lanes_mut(&mut self) -> Option<SoaLanesMut<'_, R>> {
        Some(SoaLanesMut {
            base: 0,
            x: &mut self.x,
            y: &mut self.y,
            z: &mut self.z,
            px: &mut self.px,
            py: &mut self.py,
            pz: &mut self.pz,
            gamma: &mut self.gamma,
            species: &self.species,
        })
    }

    fn split_sizes_mut(&mut self, sizes: &[usize]) -> Vec<Self::ChunkMut<'_>> {
        split_chunks(self.full_chunk(), sizes)
    }
}

impl<'c, R: Real> ParticleAccess<R> for SoaChunkMut<'c, R> {
    soa_access_body!();

    fn base_index(&self) -> usize {
        self.offset
    }

    fn soa_lanes_mut(&mut self) -> Option<SoaLanesMut<'_, R>> {
        Some(SoaLanesMut {
            base: self.offset,
            x: &mut *self.x,
            y: &mut *self.y,
            z: &mut *self.z,
            px: &mut *self.px,
            py: &mut *self.py,
            pz: &mut *self.pz,
            gamma: &mut *self.gamma,
            species: &*self.species,
        })
    }

    fn split_sizes_mut(&mut self, sizes: &[usize]) -> Vec<Self::ChunkMut<'_>> {
        split_chunks(self.reborrow(), sizes)
    }
}

impl<R: Real> ParticleStore<R> for SoaEnsemble<R> {
    fn push(&mut self, p: Particle<R>) {
        self.x.push(p.position.x);
        self.y.push(p.position.y);
        self.z.push(p.position.z);
        self.px.push(p.momentum.x);
        self.py.push(p.momentum.y);
        self.pz.push(p.momentum.z);
        self.weight.push(p.weight);
        self.gamma.push(p.gamma);
        self.species.push(p.species);
    }

    fn clear(&mut self) {
        self.x.clear();
        self.y.clear();
        self.z.clear();
        self.px.clear();
        self.py.clear();
        self.pz.clear();
        self.weight.clear();
        self.gamma.clear();
        self.species.clear();
    }

    fn reserve(&mut self, additional: usize) {
        self.x.reserve(additional);
        self.y.reserve(additional);
        self.z.reserve(additional);
        self.px.reserve(additional);
        self.py.reserve(additional);
        self.pz.reserve(additional);
        self.weight.reserve(additional);
        self.gamma.reserve(additional);
        self.species.reserve(additional);
    }

    fn swap_remove(&mut self, i: usize) -> Particle<R> {
        Particle {
            position: Vec3::new(
                self.x.swap_remove(i),
                self.y.swap_remove(i),
                self.z.swap_remove(i),
            ),
            momentum: Vec3::new(
                self.px.swap_remove(i),
                self.py.swap_remove(i),
                self.pz.swap_remove(i),
            ),
            weight: self.weight.swap_remove(i),
            gamma: self.gamma.swap_remove(i),
            species: self.species.swap_remove(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> SoaEnsemble<f64> {
        (0..n)
            .map(|i| Particle {
                position: Vec3::new(i as f64, 10.0 + i as f64, 0.0),
                momentum: Vec3::new(0.0, 0.0, i as f64),
                weight: 1.0,
                gamma: 1.0,
                species: SpeciesId((i % 3) as u16),
            })
            .collect()
    }

    #[test]
    fn push_get_roundtrip() {
        let ens = sample(5);
        for i in 0..5 {
            let p = ens.get(i);
            assert_eq!(p.position.x, i as f64);
            assert_eq!(p.momentum.z, i as f64);
            assert_eq!(p.species, SpeciesId((i % 3) as u16));
        }
        assert_eq!(ens.layout(), Layout::Soa);
    }

    #[test]
    fn columns_are_contiguous() {
        let ens = sample(4);
        assert_eq!(ens.xs(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ens.ys(), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(ens.pzs(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ens.weights(), &[1.0; 4]);
        assert_eq!(ens.gammas(), &[1.0; 4]);
        assert_eq!(ens.species_ids().len(), 4);
        assert_eq!(ens.pxs(), &[0.0; 4]);
        assert_eq!(ens.pys(), &[0.0; 4]);
        assert_eq!(ens.zs(), &[0.0; 4]);
    }

    #[test]
    fn view_mut_updates_columns() {
        let mut ens = sample(3);
        {
            let mut v = ens.view_mut(1);
            v.set_momentum(Vec3::new(7.0, 8.0, 9.0));
            v.set_gamma(2.5);
        }
        assert_eq!(ens.pxs()[1], 7.0);
        assert_eq!(ens.pys()[1], 8.0);
        assert_eq!(ens.pzs()[1], 9.0);
        assert_eq!(ens.gammas()[1], 2.5);
    }

    #[test]
    fn split_mut_roundtrip_matches_aos_semantics() {
        let mut ens = sample(10);
        {
            let mut chunks = ens.split_mut(4);
            assert_eq!(chunks.len(), 3);
            assert_eq!(chunks[0].len(), 4);
            assert_eq!(chunks[2].len(), 2);
            assert_eq!(chunks[1].base_index(), 4);
            for c in &mut chunks {
                let mut kernel =
                    crate::view::DynKernel(|i: usize, v: &mut dyn ParticleView<f64>| {
                        v.set_weight(i as f64);
                    });
                c.for_each_mut(&mut kernel);
            }
        }
        for i in 0..10 {
            assert_eq!(ens.get(i).weight, i as f64);
        }
    }

    #[test]
    fn nested_chunk_split() {
        let mut ens = sample(8);
        let mut top = ens.split_mut(8);
        let sub = top[0].split_mut(3);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub[2].base_index(), 6);
        assert_eq!(sub[2].len(), 2);
    }

    #[test]
    fn swap_remove_consistent_across_columns() {
        let mut ens = sample(4);
        let removed = ens.swap_remove(0);
        assert_eq!(removed.position.x, 0.0);
        assert_eq!(ens.len(), 3);
        let first = ens.get(0);
        assert_eq!(first.position.x, 3.0);
        assert_eq!(first.position.y, 13.0);
        assert_eq!(first.momentum.z, 3.0);
    }

    #[test]
    fn clear_and_reserve() {
        let mut ens = sample(4);
        ens.clear();
        assert!(ens.is_empty());
        ens.reserve(100);
        ens.push(Particle::default());
        assert_eq!(ens.len(), 1);
    }

    #[test]
    fn empty_split_is_empty() {
        let mut ens = SoaEnsemble::<f64>::new();
        assert!(ens.split_mut(8).is_empty());
    }

    #[test]
    fn from_columns_builds_a_chunk_over_external_storage() {
        let mut x = vec![1.0f64, 2.0];
        let mut y = vec![0.0; 2];
        let mut z = vec![0.0; 2];
        let mut px = vec![0.0; 2];
        let mut py = vec![0.0; 2];
        let mut pz = vec![5.0, 6.0];
        let mut w = vec![1.0; 2];
        let mut g = vec![1.0; 2];
        let mut sp = vec![SpeciesId(0); 2];
        {
            let mut chunk = SoaChunkMut::from_columns(
                7, &mut x, &mut y, &mut z, &mut px, &mut py, &mut pz, &mut w, &mut g, &mut sp,
            );
            assert_eq!(chunk.len(), 2);
            assert_eq!(chunk.base_index(), 7);
            assert_eq!(chunk.get(1).momentum.z, 6.0);
            let lanes = chunk.soa_lanes_mut().expect("chunk has lanes");
            assert_eq!(lanes.base, 7);
            lanes.px[0] = 3.5;
        }
        assert_eq!(px[0], 3.5);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_columns_rejects_ragged_columns() {
        let mut x = vec![1.0f64, 2.0];
        let mut y = vec![0.0; 3];
        let mut z = vec![0.0; 2];
        let mut px = vec![0.0; 2];
        let mut py = vec![0.0; 2];
        let mut pz = vec![0.0; 2];
        let mut w = vec![1.0; 2];
        let mut g = vec![1.0; 2];
        let mut sp = vec![SpeciesId(0); 2];
        let _ = SoaChunkMut::from_columns(
            0, &mut x, &mut y, &mut z, &mut px, &mut py, &mut pz, &mut w, &mut g, &mut sp,
        );
    }

    #[test]
    fn lanes_expose_columns_with_chunk_base() {
        let mut ens = sample(10);
        {
            let lanes = ens.soa_lanes_mut().expect("SoA ensemble has lanes");
            assert_eq!(lanes.base, 0);
            assert_eq!(lanes.x.len(), 10);
            lanes.px[3] = 42.0;
        }
        assert_eq!(ens.get(3).momentum.x, 42.0);
        let mut chunks = ens.split_mut(4);
        let lanes = chunks[1].soa_lanes_mut().expect("SoA chunk has lanes");
        assert_eq!(lanes.base, 4);
        assert_eq!(lanes.x.len(), 4);
        assert_eq!(lanes.x[0], 4.0);
        assert_eq!(lanes.species.len(), 4);
    }
}

//! Particle data structures for the Boris-pusher reproduction.
//!
//! The paper (§3) describes the Hi-Chi particle representation and the two
//! ensemble layouts it compares:
//!
//! * [`Particle`] — the per-particle record: position, momentum, weight,
//!   Lorentz γ and a species index (the paper's `short type`).
//! * [`SpeciesTable`] — the single-copy table of per-type mass/charge.
//! * [`AosEnsemble`] — *array of structures* layout.
//! * [`SoaEnsemble`] — *structure of arrays* layout.
//! * [`ParticleView`] — the proxy abstraction (paper's `ParticleProxy`)
//!   that lets one generic kernel run over either layout.
//! * [`init`] — initial distributions (the benchmark's uniform sphere of
//!   electrons at rest, Maxwellian momenta, …).
//! * [`sort`] — periodic cell sorting for cache locality (paper §3 notes
//!   Hi-Chi stores one global array and "periodically sorts" it).
//!
//! # Example
//!
//! ```
//! use pic_particles::{AosEnsemble, ParticleAccess, SpeciesTable};
//! use pic_particles::init::{self, SphereDist};
//! use pic_math::Vec3;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let mut ens = AosEnsemble::<f64>::new();
//! init::fill_sphere_at_rest(
//!     &mut ens,
//!     1000,
//!     &SphereDist { center: Vec3::zero(), radius: 1.0e-4 },
//!     1.0,
//!     SpeciesTable::<f64>::ELECTRON,
//!     &mut rng,
//! );
//! assert_eq!(ens.len(), 1000);
//! assert!(ens.get(0).position.norm() <= 1.0e-4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aos;
pub mod cells;
pub mod init;
pub mod io;
pub mod particle;
pub mod soa;
pub mod sort;
pub mod species;
pub mod thinning;
pub mod view;

pub use aos::{AosChunkMut, AosEnsemble};
pub use cells::CellEnsemble;
pub use io::ColumnSegment;
pub use particle::Particle;
pub use soa::{SoaChunkMut, SoaEnsemble, SoaLanesMut, SoaRefMut};
pub use species::{Species, SpeciesId, SpeciesTable};
pub use view::{DynKernel, Layout, ParticleAccess, ParticleKernel, ParticleStore, ParticleView};

//! Ensemble snapshots: plain-text export/import.
//!
//! Hi-Chi's Python layer handles I/O in the original project; downstream
//! users of this library still need to move ensembles in and out (seeding
//! from external tools, checkpointing long runs, plotting). The format is
//! deliberately trivial: one header line, then one whitespace-separated
//! line per particle — readable by `numpy.loadtxt` and by this module's
//! [`read_ensemble`].

use crate::particle::Particle;
use crate::species::SpeciesId;
use crate::view::{ParticleAccess, ParticleStore};
use pic_math::{Real, Vec3};
use std::io::{self, BufRead, Write};

/// The header line written before the particle records.
pub const HEADER: &str = "# x y z px py pz weight gamma species";

/// Writes an ensemble as text (full `f64` precision, round-trip safe).
///
/// # Errors
///
/// Propagates any I/O error from `out`.
///
/// # Example
///
/// ```
/// use pic_particles::io::{read_ensemble, write_ensemble};
/// use pic_particles::{AosEnsemble, Particle, ParticleStore};
///
/// # fn main() -> std::io::Result<()> {
/// let ens = AosEnsemble::<f64>::from_particles(
///     (0..3).map(|_| Particle::default()));
/// let mut buf = Vec::new();
/// write_ensemble(&ens, &mut buf)?;
/// let back: AosEnsemble<f64> = read_ensemble(buf.as_slice())?;
/// assert_eq!(ens, back);
/// # Ok(())
/// # }
/// ```
pub fn write_ensemble<R, A, W>(store: &A, out: &mut W) -> io::Result<()>
where
    R: Real,
    A: ParticleAccess<R>,
    W: Write,
{
    writeln!(out, "{HEADER}")?;
    for i in 0..store.len() {
        let p = store.get(i);
        let pos = p.position.to_f64();
        let mom = p.momentum.to_f64();
        writeln!(
            out,
            "{:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e} {}",
            pos.x,
            pos.y,
            pos.z,
            mom.x,
            mom.y,
            mom.z,
            p.weight.to_f64(),
            p.gamma.to_f64(),
            p.species.0
        )?;
    }
    Ok(())
}

/// Reads an ensemble written by [`write_ensemble`]. Lines starting with
/// `#` and blank lines are skipped.
///
/// # Errors
///
/// Returns `InvalidData` for malformed records, otherwise propagates I/O
/// errors.
pub fn read_ensemble<R, S, I>(input: I) -> io::Result<S>
where
    R: Real,
    S: ParticleStore<R>,
    I: io::Read,
{
    let mut store = S::default();
    let reader = io::BufReader::new(input);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 9 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected 9 fields, got {}",
                    lineno + 1,
                    fields.len()
                ),
            ));
        }
        let num = |s: &str| -> io::Result<f64> {
            s.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad number {s:?}: {e}", lineno + 1),
                )
            })
        };
        let species: u16 = fields[8].parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad species id: {e}", lineno + 1),
            )
        })?;
        store.push(Particle {
            position: Vec3::from_f64(Vec3::new(num(fields[0])?, num(fields[1])?, num(fields[2])?)),
            momentum: Vec3::from_f64(Vec3::new(num(fields[3])?, num(fields[4])?, num(fields[5])?)),
            weight: R::from_f64(num(fields[6])?),
            gamma: R::from_f64(num(fields[7])?),
            species: SpeciesId(species),
        });
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aos::AosEnsemble;
    use crate::soa::SoaEnsemble;
    use pic_math::constants::{ELECTRON_MASS, LIGHT_VELOCITY};

    fn sample() -> AosEnsemble<f64> {
        (0..25)
            .map(|i| {
                Particle::new(
                    Vec3::new(i as f64 * 1.7e-5, -3.3e-4, 2.0e-6 * i as f64),
                    Vec3::splat((i as f64 - 12.0) * 1e-18),
                    1.0 + i as f64,
                    SpeciesId((i % 3) as u16),
                    ELECTRON_MASS,
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_is_exact_f64() {
        let ens = sample();
        let mut buf = Vec::new();
        write_ensemble(&ens, &mut buf).unwrap();
        let back: AosEnsemble<f64> = read_ensemble(buf.as_slice()).unwrap();
        assert_eq!(ens, back);
    }

    #[test]
    fn roundtrip_across_layouts() {
        let ens = sample();
        let mut buf = Vec::new();
        write_ensemble(&ens, &mut buf).unwrap();
        let soa: SoaEnsemble<f64> = read_ensemble(buf.as_slice()).unwrap();
        for i in 0..ens.len() {
            assert_eq!(ens.get(i), soa.get(i));
        }
    }

    #[test]
    fn header_and_comments_are_skipped() {
        let text = format!("{HEADER}\n\n# a comment\n1 2 3 4e-18 5e-18 6e-18 2.5 1.0 1\n");
        let ens: AosEnsemble<f64> = read_ensemble(text.as_bytes()).unwrap();
        assert_eq!(ens.len(), 1);
        let p = ens.get(0);
        assert_eq!(p.position, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(p.weight, 2.5);
        assert_eq!(p.species, SpeciesId(1));
    }

    #[test]
    fn malformed_line_is_invalid_data() {
        let err = read_ensemble::<f64, AosEnsemble<f64>, _>("1 2 3\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err2 =
            read_ensemble::<f64, AosEnsemble<f64>, _>("1 2 3 4 5 6 7 8 not-a-species\n".as_bytes())
                .unwrap_err();
        assert_eq!(err2.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn f32_roundtrip_within_precision() {
        let mc = (ELECTRON_MASS * LIGHT_VELOCITY) as f32;
        let ens: SoaEnsemble<f32> = (0..5)
            .map(|i| {
                Particle::new(
                    Vec3::new(i as f32 * 0.1, 0.0, 0.0),
                    Vec3::new(mc, 0.0, 0.0),
                    1.0,
                    SpeciesId(0),
                    ELECTRON_MASS as f32,
                )
            })
            .collect();
        let mut buf = Vec::new();
        write_ensemble(&ens, &mut buf).unwrap();
        let back: SoaEnsemble<f32> = read_ensemble(buf.as_slice()).unwrap();
        for i in 0..ens.len() {
            let a = ens.get(i);
            let b = back.get(i);
            assert!((a.momentum - b.momentum).norm() <= 1e-6 * a.momentum.norm());
        }
    }
}

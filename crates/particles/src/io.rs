//! Ensemble snapshots: plain-text export/import.
//!
//! Hi-Chi's Python layer handles I/O in the original project; downstream
//! users of this library still need to move ensembles in and out (seeding
//! from external tools, checkpointing long runs, plotting). The format is
//! deliberately trivial: one header line, then one whitespace-separated
//! line per particle — readable by `numpy.loadtxt` and by this module's
//! [`read_ensemble`].

use crate::particle::Particle;
use crate::species::SpeciesId;
use crate::view::{ParticleAccess, ParticleStore};
use pic_math::{Real, Vec3};
use std::io::{self, BufRead, Write};

/// The header line written before the particle records.
pub const HEADER: &str = "# x y z px py pz weight gamma species";

/// Writes an ensemble as text (full `f64` precision, round-trip safe).
///
/// # Errors
///
/// Propagates any I/O error from `out`.
///
/// # Example
///
/// ```
/// use pic_particles::io::{read_ensemble, write_ensemble};
/// use pic_particles::{AosEnsemble, Particle, ParticleStore};
///
/// # fn main() -> std::io::Result<()> {
/// let ens = AosEnsemble::<f64>::from_particles(
///     (0..3).map(|_| Particle::default()));
/// let mut buf = Vec::new();
/// write_ensemble(&ens, &mut buf)?;
/// let back: AosEnsemble<f64> = read_ensemble(buf.as_slice())?;
/// assert_eq!(ens, back);
/// # Ok(())
/// # }
/// ```
pub fn write_ensemble<R, A, W>(store: &A, out: &mut W) -> io::Result<()>
where
    R: Real,
    A: ParticleAccess<R>,
    W: Write,
{
    writeln!(out, "{HEADER}")?;
    for i in 0..store.len() {
        let p = store.get(i);
        let pos = p.position.to_f64();
        let mom = p.momentum.to_f64();
        writeln!(
            out,
            "{:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e} {}",
            pos.x,
            pos.y,
            pos.z,
            mom.x,
            mom.y,
            mom.z,
            p.weight.to_f64(),
            p.gamma.to_f64(),
            p.species.0
        )?;
    }
    Ok(())
}

/// Reads an ensemble written by [`write_ensemble`]. Lines starting with
/// `#` and blank lines are skipped.
///
/// # Errors
///
/// Returns `InvalidData` for malformed records, otherwise propagates I/O
/// errors.
pub fn read_ensemble<R, S, I>(input: I) -> io::Result<S>
where
    R: Real,
    S: ParticleStore<R>,
    I: io::Read,
{
    let mut store = S::default();
    let reader = io::BufReader::new(input);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 9 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected 9 fields, got {}",
                    lineno + 1,
                    fields.len()
                ),
            ));
        }
        let num = |s: &str| -> io::Result<f64> {
            s.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad number {s:?}: {e}", lineno + 1),
                )
            })
        };
        let species: u16 = fields[8].parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad species id: {e}", lineno + 1),
            )
        })?;
        store.push(Particle {
            position: Vec3::from_f64(Vec3::new(num(fields[0])?, num(fields[1])?, num(fields[2])?)),
            momentum: Vec3::from_f64(Vec3::new(num(fields[3])?, num(fields[4])?, num(fields[5])?)),
            weight: R::from_f64(num(fields[6])?),
            gamma: R::from_f64(num(fields[7])?),
            species: SpeciesId(species),
        });
    }
    Ok(store)
}

/// A contiguous range of particles as typed columns — the zero-copy
/// gather payload for domain-decomposed runs.
///
/// Columns are stored widened to `f64` (lossless for both supported
/// precisions), exactly the values [`write_ensemble`] would print, so a
/// segment can reproduce the text dump of its range bitwise via
/// [`write_text`](Self::write_text) without the producer serializing
/// anything. A merger splices segments back into a store by range
/// ([`splice_into`](Self::splice_into)) or concatenates them
/// ([`append`](Self::append)) — both are plain column copies, no
/// parsing, no float formatting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnSegment {
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    weight: Vec<f64>,
    gamma: Vec<f64>,
    species: Vec<u16>,
}

/// Magic tag leading the binary encoding of a [`ColumnSegment`].
const SEGMENT_MAGIC: [u8; 8] = *b"PICSEG01";

impl ColumnSegment {
    /// Captures `len` particles of `store` starting at `offset` as
    /// widened columns.
    ///
    /// # Panics
    ///
    /// Panics when `offset + len` exceeds `store.len()`.
    pub fn from_store<R, A>(store: &A, offset: usize, len: usize) -> ColumnSegment
    where
        R: Real,
        A: ParticleAccess<R>,
    {
        assert!(
            offset
                .checked_add(len)
                .is_some_and(|end| end <= store.len()),
            "segment range {offset}+{len} out of bounds for store of {}",
            store.len()
        );
        let mut seg = ColumnSegment::with_capacity(len);
        for i in offset..offset + len {
            let p = store.get(i);
            let pos = p.position.to_f64();
            let mom = p.momentum.to_f64();
            seg.x.push(pos.x);
            seg.y.push(pos.y);
            seg.z.push(pos.z);
            seg.px.push(mom.x);
            seg.py.push(mom.y);
            seg.pz.push(mom.z);
            seg.weight.push(p.weight.to_f64());
            seg.gamma.push(p.gamma.to_f64());
            seg.species.push(p.species.0);
        }
        seg
    }

    /// An empty segment with room for `len` particles per column.
    pub fn with_capacity(len: usize) -> ColumnSegment {
        ColumnSegment {
            x: Vec::with_capacity(len),
            y: Vec::with_capacity(len),
            z: Vec::with_capacity(len),
            px: Vec::with_capacity(len),
            py: Vec::with_capacity(len),
            pz: Vec::with_capacity(len),
            weight: Vec::with_capacity(len),
            gamma: Vec::with_capacity(len),
            species: Vec::with_capacity(len),
        }
    }

    /// Number of particles in the segment.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// `true` when the segment holds no particles.
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Approximate payload size in bytes (the splice cost unit).
    pub fn byte_len(&self) -> usize {
        8 * self.len() * std::mem::size_of::<f64>() + self.len() * std::mem::size_of::<u16>()
    }

    /// Splices the segment's particles into `store` starting at
    /// `offset`, narrowing back to the store's precision (exact for
    /// values that were widened from it).
    ///
    /// # Panics
    ///
    /// Panics when `offset + self.len()` exceeds `store.len()`.
    pub fn splice_into<R, A>(&self, store: &mut A, offset: usize)
    where
        R: Real,
        A: ParticleAccess<R>,
    {
        assert!(
            offset
                .checked_add(self.len())
                .is_some_and(|end| end <= store.len()),
            "segment splice {offset}+{} out of bounds for store of {}",
            self.len(),
            store.len()
        );
        for i in 0..self.len() {
            store.set(
                offset + i,
                &Particle {
                    position: Vec3::from_f64(Vec3::new(self.x[i], self.y[i], self.z[i])),
                    momentum: Vec3::from_f64(Vec3::new(self.px[i], self.py[i], self.pz[i])),
                    weight: R::from_f64(self.weight[i]),
                    gamma: R::from_f64(self.gamma[i]),
                    species: SpeciesId(self.species[i]),
                },
            );
        }
    }

    /// Appends every particle of `other` after this segment's — the
    /// in-order gather splice (column `extend`s, no per-field work).
    pub fn append(&mut self, other: &ColumnSegment) {
        self.x.extend_from_slice(&other.x);
        self.y.extend_from_slice(&other.y);
        self.z.extend_from_slice(&other.z);
        self.px.extend_from_slice(&other.px);
        self.py.extend_from_slice(&other.py);
        self.pz.extend_from_slice(&other.pz);
        self.weight.extend_from_slice(&other.weight);
        self.gamma.extend_from_slice(&other.gamma);
        self.species.extend_from_slice(&other.species);
    }

    /// Writes the particle lines (no header) in exactly the format of
    /// [`write_ensemble`]: a segment captured from a store reproduces
    /// that store range's dump bytes verbatim.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `out`.
    pub fn write_text<W: Write>(&self, out: &mut W) -> io::Result<()> {
        for i in 0..self.len() {
            writeln!(
                out,
                "{:e} {:e} {:e} {:e} {:e} {:e} {:e} {:e} {}",
                self.x[i],
                self.y[i],
                self.z[i],
                self.px[i],
                self.py[i],
                self.pz[i],
                self.weight[i],
                self.gamma[i],
                self.species[i]
            )?;
        }
        Ok(())
    }

    /// Encodes the segment as a self-describing little-endian byte
    /// stream (magic, count, eight `f64` columns, species column).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.len();
        let mut out = Vec::with_capacity(SEGMENT_MAGIC.len() + 8 + self.byte_len());
        out.extend_from_slice(&SEGMENT_MAGIC);
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for col in [
            &self.x,
            &self.y,
            &self.z,
            &self.px,
            &self.py,
            &self.pz,
            &self.weight,
            &self.gamma,
        ] {
            for v in col {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        for s in &self.species {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Decodes a segment written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic tag, a truncated stream, or
    /// trailing bytes — a mangled shard payload must fail loudly, never
    /// splice garbage.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<ColumnSegment> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if bytes.len() < SEGMENT_MAGIC.len() + 8 {
            return Err(bad(format!(
                "segment header truncated: {} bytes",
                bytes.len()
            )));
        }
        let (magic, rest) = bytes.split_at(SEGMENT_MAGIC.len());
        if magic != SEGMENT_MAGIC {
            return Err(bad("bad segment magic".to_string()));
        }
        let (count, mut rest) = rest.split_at(8);
        // unwrap-free: split_at(8) guarantees exactly 8 bytes.
        let n64 = u64::from_le_bytes(count.try_into().unwrap_or([0; 8]));
        let n = usize::try_from(n64).map_err(|_| bad(format!("segment count {n64} overflows")))?;
        let per = 8 * std::mem::size_of::<f64>() + std::mem::size_of::<u16>();
        let expect = n
            .checked_mul(per)
            .ok_or_else(|| bad(format!("segment count {n64} overflows")))?;
        if rest.len() != expect {
            return Err(bad(format!(
                "segment of {n} particles needs {expect} payload bytes, got {}",
                rest.len()
            )));
        }
        let mut read_col = || {
            let (raw, tail) = rest.split_at(n * 8);
            rest = tail;
            raw.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap_or([0; 8])))
                .collect::<Vec<f64>>()
        };
        let x = read_col();
        let y = read_col();
        let z = read_col();
        let px = read_col();
        let py = read_col();
        let pz = read_col();
        let weight = read_col();
        let gamma = read_col();
        let species = rest
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().unwrap_or([0; 2])))
            .collect();
        Ok(ColumnSegment {
            x,
            y,
            z,
            px,
            py,
            pz,
            weight,
            gamma,
            species,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aos::AosEnsemble;
    use crate::soa::SoaEnsemble;
    use pic_math::constants::{ELECTRON_MASS, LIGHT_VELOCITY};

    fn sample() -> AosEnsemble<f64> {
        (0..25)
            .map(|i| {
                Particle::new(
                    Vec3::new(i as f64 * 1.7e-5, -3.3e-4, 2.0e-6 * i as f64),
                    Vec3::splat((i as f64 - 12.0) * 1e-18),
                    1.0 + i as f64,
                    SpeciesId((i % 3) as u16),
                    ELECTRON_MASS,
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_is_exact_f64() {
        let ens = sample();
        let mut buf = Vec::new();
        write_ensemble(&ens, &mut buf).unwrap();
        let back: AosEnsemble<f64> = read_ensemble(buf.as_slice()).unwrap();
        assert_eq!(ens, back);
    }

    #[test]
    fn roundtrip_across_layouts() {
        let ens = sample();
        let mut buf = Vec::new();
        write_ensemble(&ens, &mut buf).unwrap();
        let soa: SoaEnsemble<f64> = read_ensemble(buf.as_slice()).unwrap();
        for i in 0..ens.len() {
            assert_eq!(ens.get(i), soa.get(i));
        }
    }

    #[test]
    fn header_and_comments_are_skipped() {
        let text = format!("{HEADER}\n\n# a comment\n1 2 3 4e-18 5e-18 6e-18 2.5 1.0 1\n");
        let ens: AosEnsemble<f64> = read_ensemble(text.as_bytes()).unwrap();
        assert_eq!(ens.len(), 1);
        let p = ens.get(0);
        assert_eq!(p.position, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(p.weight, 2.5);
        assert_eq!(p.species, SpeciesId(1));
    }

    #[test]
    fn malformed_line_is_invalid_data() {
        let err = read_ensemble::<f64, AosEnsemble<f64>, _>("1 2 3\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err2 =
            read_ensemble::<f64, AosEnsemble<f64>, _>("1 2 3 4 5 6 7 8 not-a-species\n".as_bytes())
                .unwrap_err();
        assert_eq!(err2.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn segment_text_matches_write_ensemble_bytes() {
        let ens = sample();
        let mut whole = Vec::new();
        write_ensemble(&ens, &mut whole).unwrap();
        // Header + the two range segments, spliced in order.
        let mut spliced = format!("{HEADER}\n").into_bytes();
        for (offset, len) in [(0usize, 10usize), (10, 15)] {
            let seg = ColumnSegment::from_store(&ens, offset, len);
            assert_eq!(seg.len(), len);
            seg.write_text(&mut spliced).unwrap();
        }
        assert_eq!(whole, spliced, "segment text must be dump bytes verbatim");
    }

    #[test]
    fn segment_splice_round_trips_both_layouts() {
        let ens = sample();
        let seg = ColumnSegment::from_store(&ens, 5, 12);
        let mut back: AosEnsemble<f64> = sample();
        let mut soa: SoaEnsemble<f64> = (0..ens.len()).map(|i| ens.get(i)).collect();
        seg.splice_into(&mut back, 5);
        seg.splice_into(&mut soa, 5);
        for i in 0..ens.len() {
            assert_eq!(back.get(i), ens.get(i));
            assert_eq!(soa.get(i), ens.get(i));
        }
    }

    #[test]
    fn segment_append_concatenates_ranges() {
        let ens = sample();
        let mut merged = ColumnSegment::from_store(&ens, 0, 10);
        merged.append(&ColumnSegment::from_store(&ens, 10, 15));
        assert_eq!(merged, ColumnSegment::from_store(&ens, 0, 25));
        assert_eq!(merged.byte_len(), 25 * (8 * 8 + 2));
    }

    #[test]
    fn segment_binary_codec_round_trips() {
        let ens = sample();
        let seg = ColumnSegment::from_store(&ens, 0, ens.len());
        let back = ColumnSegment::from_bytes(&seg.to_bytes()).unwrap();
        assert_eq!(back, seg);
        let empty = ColumnSegment::default();
        assert!(empty.is_empty());
        assert_eq!(ColumnSegment::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn truncated_or_mangled_segment_is_invalid_data() {
        let ens = sample();
        let bytes = ColumnSegment::from_bytes(&ColumnSegment::from_store(&ens, 0, 4).to_bytes())
            .unwrap()
            .to_bytes();
        // Truncated payload, truncated header, bad magic, trailing junk:
        // all must surface as InvalidData, never a panic or silent data.
        let cases: Vec<Vec<u8>> = vec![
            bytes[..bytes.len() - 3].to_vec(),
            bytes[..7].to_vec(),
            {
                let mut b = bytes.clone();
                b[0] ^= 0xff;
                b
            },
            {
                let mut b = bytes.clone();
                b.push(0);
                b
            },
        ];
        for (i, case) in cases.iter().enumerate() {
            let err = ColumnSegment::from_bytes(case).expect_err("case must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "case {i}");
        }
    }

    #[test]
    fn f32_segment_widening_is_lossless() {
        let ens: SoaEnsemble<f32> = (0..8)
            .map(|i| {
                Particle::new(
                    Vec3::new(i as f32 * 0.37, -1.5, 0.25 * i as f32),
                    Vec3::splat(1.0e-19_f32),
                    1.0 + i as f32,
                    SpeciesId(i as u16 % 2),
                    ELECTRON_MASS as f32,
                )
            })
            .collect();
        let seg = ColumnSegment::from_store(&ens, 0, 8);
        let mut back: SoaEnsemble<f32> = (0..8).map(|_| Particle::default()).collect();
        seg.splice_into(&mut back, 0);
        for i in 0..8 {
            assert_eq!(back.get(i), ens.get(i), "f64 widening must round-trip");
        }
        // And the text path matches write_ensemble on the f32 store too.
        let mut whole = Vec::new();
        write_ensemble(&ens, &mut whole).unwrap();
        let mut text = format!("{HEADER}\n").into_bytes();
        seg.write_text(&mut text).unwrap();
        assert_eq!(whole, text);
    }

    #[test]
    fn f32_roundtrip_within_precision() {
        let mc = (ELECTRON_MASS * LIGHT_VELOCITY) as f32;
        let ens: SoaEnsemble<f32> = (0..5)
            .map(|i| {
                Particle::new(
                    Vec3::new(i as f32 * 0.1, 0.0, 0.0),
                    Vec3::new(mc, 0.0, 0.0),
                    1.0,
                    SpeciesId(0),
                    ELECTRON_MASS as f32,
                )
            })
            .collect();
        let mut buf = Vec::new();
        write_ensemble(&ens, &mut buf).unwrap();
        let back: SoaEnsemble<f32> = read_ensemble(buf.as_slice()).unwrap();
        for i in 0..ens.len() {
            let a = ens.get(i);
            let b = back.get(i);
            assert!((a.momentum - b.momentum).norm() <= 1e-6 * a.momentum.norm());
        }
    }
}

//! Property tests for the ensemble text format: round-trips are exact
//! for arbitrary finite particles in both layouts and both precisions,
//! and truncated/corrupted inputs fail loudly with `InvalidData` rather
//! than silently yielding a short ensemble.

use pic_math::{Real, Vec3};
use pic_particles::io::{read_ensemble, write_ensemble};
use pic_particles::{AosEnsemble, Particle, ParticleAccess, SoaEnsemble, SpeciesId};
use proptest::prelude::*;
use std::io::ErrorKind;

/// Finite, sign-mixed magnitudes spanning the scales the benchmark
/// actually uses (positions ~1e-5 m, momenta ~1e-18 kg·m/s) and far
/// beyond: mantissa in (-1, 1), decimal exponent in [-30, 30].
fn field() -> impl Strategy<Value = f64> {
    ((-30i32..31), (-1.0f64..1.0)).prop_map(|(e, m)| m * 10f64.powi(e))
}

fn triple() -> impl Strategy<Value = Vec3<f64>> {
    (field(), field(), field()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn particle() -> impl Strategy<Value = Particle<f64>> {
    (triple(), triple(), field(), (1.0f64..1e3), (0u16..u16::MAX)).prop_map(
        |(position, momentum, weight, gamma, species)| Particle {
            position,
            momentum,
            weight,
            gamma,
            species: SpeciesId(species),
        },
    )
}

fn particles() -> impl Strategy<Value = Vec<Particle<f64>>> {
    proptest::collection::vec(particle(), 0..32)
}

fn write_to_string<R: Real, A: ParticleAccess<R>>(store: &A) -> String {
    let mut buf = Vec::new();
    write_ensemble(store, &mut buf).expect("write to Vec cannot fail");
    String::from_utf8(buf).expect("text format is UTF-8")
}

proptest! {
    #[test]
    fn aos_f64_roundtrip_is_exact(ps in particles()) {
        let ens: AosEnsemble<f64> = ps.iter().copied().collect();
        let text = write_to_string(&ens);
        let back: AosEnsemble<f64> = read_ensemble(text.as_bytes()).expect("parse");
        prop_assert_eq!(&ens, &back);
    }

    #[test]
    fn soa_f64_roundtrip_is_exact(ps in particles()) {
        let ens: SoaEnsemble<f64> = ps.iter().copied().collect();
        let text = write_to_string(&ens);
        let back: SoaEnsemble<f64> = read_ensemble(text.as_bytes()).expect("parse");
        prop_assert_eq!(back.len(), ens.len());
        for i in 0..ens.len() {
            prop_assert_eq!(ens.get(i), back.get(i));
        }
    }

    #[test]
    fn layouts_agree_on_the_same_text(ps in particles()) {
        let aos: AosEnsemble<f64> = ps.iter().copied().collect();
        let text = write_to_string(&aos);
        let soa: SoaEnsemble<f64> = read_ensemble(text.as_bytes()).expect("parse");
        for i in 0..aos.len() {
            prop_assert_eq!(aos.get(i), soa.get(i));
        }
    }

    // An f32 widens to f64 exactly, `{:e}` round-trips the f64, and
    // the final f64→f32 conversion recovers the original bits — so even
    // float ensembles round-trip exactly, not just approximately.
    #[test]
    fn f32_roundtrip_is_exact_in_both_layouts(ps in particles()) {
        let aos: AosEnsemble<f32> = ps
            .iter()
            .map(|p| Particle {
                position: Vec3::from_f64(p.position),
                momentum: Vec3::from_f64(p.momentum),
                weight: p.weight as f32,
                gamma: p.gamma as f32,
                species: p.species,
            })
            .collect();
        let text = write_to_string(&aos);
        let back_aos: AosEnsemble<f32> = read_ensemble(text.as_bytes()).expect("parse");
        prop_assert_eq!(&aos, &back_aos);
        let back_soa: SoaEnsemble<f32> = read_ensemble(text.as_bytes()).expect("parse");
        for i in 0..aos.len() {
            prop_assert_eq!(aos.get(i), back_soa.get(i));
        }
    }

    // Truncation that cuts fields off a record must surface as
    // InvalidData — never as a silently shorter ensemble.
    #[test]
    fn truncated_records_are_invalid_data(
        ps in proptest::collection::vec(particle(), 1..16),
        victim in (0usize..1_000_000),
        keep in 1usize..9,
    ) {
        let ens: AosEnsemble<f64> = ps.iter().copied().collect();
        let text = write_to_string(&ens);
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        // lines[0] is the header; pick a data line and drop fields.
        let line = 1 + victim % ens.len();
        let fields: Vec<&str> = lines[line].split_whitespace().collect();
        lines[line] = fields[..keep].join(" ");
        let mangled = lines.join("\n");
        let err = read_ensemble::<f64, AosEnsemble<f64>, _>(mangled.as_bytes())
            .expect_err("truncated record must not parse");
        prop_assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn corrupted_numbers_are_invalid_data(
        ps in proptest::collection::vec(particle(), 1..8),
        victim in (0usize..1_000_000),
        column in 0usize..9,
    ) {
        let ens: AosEnsemble<f64> = ps.iter().copied().collect();
        let text = write_to_string(&ens);
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let line = 1 + victim % ens.len();
        let mut fields: Vec<String> =
            lines[line].split_whitespace().map(str::to_owned).collect();
        fields[column] = "bogus".to_string();
        lines[line] = fields.join(" ");
        let mangled = lines.join("\n");
        let err = read_ensemble::<f64, AosEnsemble<f64>, _>(mangled.as_bytes())
            .expect_err("corrupted field must not parse");
        prop_assert_eq!(err.kind(), ErrorKind::InvalidData);
    }
}

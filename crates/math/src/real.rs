//! The floating-point abstraction (`FP` in the paper's Hi-Chi code).
//!
//! The paper (§3) stresses that Hi-Chi "can easily switch between using
//! single and double precision data types" by abstracting the scalar type
//! as `FP`. [`Real`] is the Rust equivalent: a sealed trait implemented for
//! exactly `f32` and `f64`, carrying every scalar operation the pushers,
//! field evaluators and solvers need.

use std::fmt::{Debug, Display, LowerExp};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

mod private {
    /// Prevents downstream implementations so new methods can be added
    /// without a breaking change (C-SEALED).
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Abstraction over `f32`/`f64`, mirroring the paper's `FP` typedef.
///
/// This trait is sealed: it is implemented for `f32` and `f64` only and
/// cannot be implemented outside this crate.
///
/// # Example
///
/// ```
/// use pic_math::Real;
///
/// fn kinetic_energy<R: Real>(gamma: R, mc2: R) -> R {
///     (gamma - R::ONE) * mc2
/// }
/// assert_eq!(kinetic_energy(2.0_f32, 1.0), 1.0);
/// assert_eq!(kinetic_energy(2.0_f64, 1.0), 1.0);
/// ```
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + LowerExp
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Rem<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + private::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// The constant 2.
    const TWO: Self;
    /// The constant 1/2.
    const HALF: Self;
    /// Archimedes' constant π.
    const PI: Self;
    /// Machine epsilon of the underlying type.
    const EPSILON: Self;
    /// Largest finite value.
    const MAX: Self;
    /// Number of bytes in the in-memory representation (4 or 8).
    const BYTES: usize;
    /// Human-readable name matching the paper's tables: `"float"`/`"double"`.
    const NAME: &'static str;

    /// Lossy conversion from `f64` (used for literals and constants).
    fn from_f64(x: f64) -> Self;
    /// Lossless widening to `f64` (used by diagnostics and statistics).
    fn to_f64(self) -> f64;
    /// Conversion from an index or count.
    fn from_usize(n: usize) -> Self;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Sine (radians).
    fn sin(self) -> Self;
    /// Cosine (radians).
    fn cos(self) -> Self;
    /// Simultaneous sine and cosine.
    fn sin_cos(self) -> (Self, Self);
    /// Exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Reciprocal `1/self`.
    fn recip(self) -> Self;
    /// Largest integer ≤ `self`.
    fn floor(self) -> Self;
    /// Rounds half away from zero.
    fn round(self) -> Self;
    /// Minimum of two values (propagates the non-NaN operand).
    fn min(self, other: Self) -> Self;
    /// Maximum of two values (propagates the non-NaN operand).
    fn max(self, other: Self) -> Self;
    /// `true` if the value is finite.
    fn is_finite(self) -> bool;
    /// `true` if the value is NaN.
    fn is_nan(self) -> bool;

    /// Clamps into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    fn clamp(self, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi, "clamp: lo > hi");
        self.max(lo).min(hi)
    }
}

macro_rules! impl_real {
    ($t:ty, $name:expr, $bytes:expr, $pi:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;
            const PI: Self = $pi;
            const EPSILON: Self = <$t>::EPSILON;
            const MAX: Self = <$t>::MAX;
            const BYTES: usize = $bytes;
            const NAME: &'static str = $name;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_usize(n: usize) -> Self {
                n as $t
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline(always)]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline(always)]
            fn sin_cos(self) -> (Self, Self) {
                self.sin_cos()
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline(always)]
            fn recip(self) -> Self {
                self.recip()
            }
            #[inline(always)]
            fn floor(self) -> Self {
                self.floor()
            }
            #[inline(always)]
            fn round(self) -> Self {
                self.round()
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                self.is_nan()
            }
        }
    };
}

impl_real!(f32, "float", 4, std::f32::consts::PI);
impl_real!(f64, "double", 8, std::f64::consts::PI);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Real>() {
        assert_eq!(R::from_f64(0.0), R::ZERO);
        assert_eq!(R::from_f64(1.0), R::ONE);
        assert_eq!(R::ONE + R::ONE, R::TWO);
        assert_eq!(R::ONE / R::TWO, R::HALF);
        assert_eq!(R::from_usize(7).to_f64(), 7.0);
    }

    #[test]
    fn identities_f32() {
        roundtrip::<f32>();
    }

    #[test]
    fn identities_f64() {
        roundtrip::<f64>();
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(f32::NAME, "float");
        assert_eq!(f64::NAME, "double");
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn trig_and_sqrt() {
        fn check<R: Real>(tol: f64) {
            let x = R::from_f64(0.7);
            let (s, c) = x.sin_cos();
            assert!((s.to_f64() - 0.7f64.sin()).abs() < tol);
            assert!((c.to_f64() - 0.7f64.cos()).abs() < tol);
            assert!(((s * s + c * c).to_f64() - 1.0).abs() < tol);
            assert!((R::from_f64(2.0).sqrt().to_f64() - 2.0f64.sqrt()).abs() < tol);
        }
        check::<f32>(1e-6);
        check::<f64>(1e-14);
    }

    #[test]
    fn clamp_orders() {
        assert_eq!(5.0f64.clamp(0.0, 1.0), 1.0);
        assert_eq!((-5.0f64).clamp(0.0, 1.0), 0.0);
        assert_eq!(0.5f32.clamp(0.0, 1.0), 0.5);
    }

    #[test]
    fn mul_add_matches() {
        let r = 2.0f64.mul_add(3.0, 4.0);
        assert_eq!(r, 10.0);
    }

    #[test]
    fn min_max_behave() {
        assert_eq!(Real::min(1.0f32, 2.0), 1.0);
        assert_eq!(Real::max(1.0f32, 2.0), 2.0);
    }
}

//! Unit conversions for laser–plasma work.
//!
//! Everything in this reproduction is Gaussian (CGS) internally, like
//! Hi-Chi; the laser-plasma literature, however, quotes intensities in
//! W/cm², powers in PW, and field strengths as the dimensionless
//! `a₀ = eE/(m_e ω c)`. This module converts between those conventions so
//! the examples and benches can speak the paper's language.

use crate::constants::{ELECTRON_MASS, ELEMENTARY_CHARGE, LIGHT_VELOCITY, WATT};

/// Converts a field amplitude (statvolt/cm) and angular frequency (s⁻¹)
/// to the normalized amplitude `a₀ = eE/(m_e ω c)`.
///
/// `a₀ ≳ 1` marks the relativistic-optics regime the benchmark operates
/// in.
pub fn a0_from_field(e_field: f64, omega: f64) -> f64 {
    ELEMENTARY_CHARGE * e_field / (ELECTRON_MASS * omega * LIGHT_VELOCITY)
}

/// Inverse of [`a0_from_field`]: the field (statvolt/cm) of a given `a₀`.
pub fn field_from_a0(a0: f64, omega: f64) -> f64 {
    a0 * ELECTRON_MASS * omega * LIGHT_VELOCITY / ELEMENTARY_CHARGE
}

/// Peak intensity (W/cm²) of a plane wave with peak field `e_field`
/// (statvolt/cm): `I = c E²/(8π)` time-averaged, converted to SI-ish
/// laser units.
pub fn intensity_from_field(e_field: f64) -> f64 {
    LIGHT_VELOCITY * e_field * e_field / (8.0 * std::f64::consts::PI) / WATT
}

/// Peak field (statvolt/cm) of a plane wave of intensity `intensity`
/// (W/cm²).
pub fn field_from_intensity(intensity: f64) -> f64 {
    (8.0 * std::f64::consts::PI * intensity * WATT / LIGHT_VELOCITY).sqrt()
}

/// Critical plasma density (cm⁻³) for angular frequency `omega`:
/// `n_c = m_e ω²/(4π e²)` — above it the plasma is opaque to the wave.
pub fn critical_density(omega: f64) -> f64 {
    ELECTRON_MASS * omega * omega
        / (4.0 * std::f64::consts::PI * ELEMENTARY_CHARGE * ELEMENTARY_CHARGE)
}

/// Electron plasma frequency (rad/s) of density `n` (cm⁻³):
/// `ω_p = √(4π n e²/m_e)`.
pub fn plasma_frequency(density: f64) -> f64 {
    (4.0 * std::f64::consts::PI * density * ELEMENTARY_CHARGE * ELEMENTARY_CHARGE / ELECTRON_MASS)
        .sqrt()
}

/// The Schwinger critical field, statvolt/cm (`m²c³/(eħ)`), above which
/// vacuum pair production sets in — the ceiling of classical treatments.
pub const SCHWINGER_FIELD: f64 = 4.4e13;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::BENCH_OMEGA;

    #[test]
    fn a0_roundtrip() {
        let omega = BENCH_OMEGA;
        for &a0 in &[0.1, 1.0, 57.3] {
            let e = field_from_a0(a0, omega);
            assert!((a0_from_field(e, omega) - a0).abs() / a0 < 1e-14);
        }
    }

    #[test]
    fn known_a0_calibration_point() {
        // For λ = 0.8 µm, a₀ = 1 corresponds to I ≈ 2.1×10¹⁸ W/cm²
        // (standard laser-plasma rule of thumb: a₀² = I λ²[µm] / 1.37e18).
        let omega = 2.0 * std::f64::consts::PI * LIGHT_VELOCITY / 0.8e-4;
        let e = field_from_a0(1.0, omega);
        let intensity = intensity_from_field(e);
        assert!(
            (intensity - 2.14e18).abs() / 2.14e18 < 0.05,
            "I(a0=1, 0.8µm) = {intensity:.3e}"
        );
    }

    #[test]
    fn intensity_roundtrip() {
        for &i0 in &[1e15, 1e18, 1e22] {
            let e = field_from_intensity(i0);
            assert!((intensity_from_field(e) - i0).abs() / i0 < 1e-12);
        }
    }

    #[test]
    fn critical_density_at_micron_wavelengths() {
        // n_c(λ = 1 µm) ≈ 1.1×10²¹ cm⁻³.
        let omega = 2.0 * std::f64::consts::PI * LIGHT_VELOCITY / 1.0e-4;
        let nc = critical_density(omega);
        assert!((nc - 1.1e21).abs() / 1.1e21 < 0.05, "n_c = {nc:.3e}");
    }

    #[test]
    fn plasma_frequency_inverts_critical_density() {
        let omega = BENCH_OMEGA;
        let nc = critical_density(omega);
        assert!((plasma_frequency(nc) - omega).abs() / omega < 1e-12);
    }

    #[test]
    fn benchmark_is_relativistic_but_subcritical() {
        // The 0.1 PW dipole wave: a₀ ≫ 1 (relativistic) yet far below the
        // Schwinger field (classical dynamics valid) — the paper's regime.
        let a0_field = 2.0 * crate::constants::BENCH_POWER.sqrt(); // rough scale only
        let _ = a0_field;
        let focal_field = 4.0 / 3.0
            * (BENCH_OMEGA / LIGHT_VELOCITY)
            * (3.0 * crate::constants::BENCH_POWER / LIGHT_VELOCITY).sqrt();
        let a0 = a0_from_field(focal_field, BENCH_OMEGA);
        assert!(a0 > 10.0, "a₀ = {a0}");
        assert!(focal_field < 0.01 * SCHWINGER_FIELD);
    }
}

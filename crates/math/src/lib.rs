//! Mathematical foundations for the Boris-pusher reproduction.
//!
//! This crate provides the pieces of numerical infrastructure that the
//! paper's Hi-Chi C++ code gets from its `FP`/`FP3` abstractions:
//!
//! * [`Real`] — a floating-point abstraction over `f32`/`f64`, the analogue
//!   of the paper's `FP` typedef that lets the whole stack switch between
//!   single and double precision (paper §3).
//! * [`Vec3`] — a 3-component vector (the paper's `FP3`).
//! * [`constants`] — Gaussian (CGS) physical constants used by Hi-Chi.
//! * [`special`] — the dipole-wave radial functions f₁, f₂, f₃ of Eq. (15),
//!   with series expansions that stay accurate near the focus.
//! * [`stats`] — summary statistics used by the benchmark harness.
//!
//! # Example
//!
//! ```
//! use pic_math::{Real, Vec3};
//!
//! fn lorentz_gamma<R: Real>(p_over_mc: Vec3<R>) -> R {
//!     (R::ONE + p_over_mc.norm2()).sqrt()
//! }
//!
//! let g = lorentz_gamma(Vec3::new(3.0_f64, 0.0, 0.0));
//! assert!((g - 10.0f64.sqrt()).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod real;
pub mod special;
pub mod stats;
pub mod tabulated;
pub mod units;
pub mod vector;

pub use real::Real;
pub use vector::Vec3;

//! Radial functions of the standing m-dipole wave (paper Eq. 15).
//!
//! The benchmark field (paper §5.2) is built from three radial functions
//!
//! ```text
//! f1(x) = sin(x)/x² − cos(x)/x                                  (= j₁(x))
//! f2(x) = (3/x³ − 1/x)·sin(x) − 3·cos(x)/x²                     (= j₂(x))
//! f3(x) = (1/x − 1/x³)·sin(x) + cos(x)/x²                       (= j₀(x) − j₁(x)/x)
//! ```
//!
//! with `x = kR`. Near the focus (`x → 0`) the closed forms suffer
//! catastrophic cancellation — e.g. `f2` subtracts two `O(1/x³)` terms to
//! produce an `O(x²)` result — so for small `x` we evaluate the power
//! series instead, iterating the term recurrence to machine precision.

use crate::real::Real;

/// Below this argument the series expansions are used instead of the
/// closed forms. At `x = 1` both branches agree to ~10⁻¹⁴ relative in
/// double precision, so the hand-over is seamless.
pub const SERIES_THRESHOLD: f64 = 1.0;

#[inline]
fn series<R: Real>(x: R, first: R, ratio: impl Fn(usize) -> f64) -> R {
    // Sums first · Σ tₙ with t₀ = 1, tₙ₊₁ = −tₙ·x²/ratio(n), until the terms
    // stop contributing.
    let x2 = x * x;
    let mut term = R::ONE;
    let mut sum = R::ONE;
    for n in 0..32 {
        term = -term * x2 / R::from_f64(ratio(n));
        let next = sum + term;
        if next == sum {
            break;
        }
        sum = next;
    }
    first * sum
}

/// Spherical Bessel function j₀(x) = sin(x)/x, continuous at 0.
///
/// # Example
///
/// ```
/// use pic_math::special::j0;
/// assert_eq!(j0(0.0_f64), 1.0);
/// assert!((j0(3.0_f64) - 3.0f64.sin() / 3.0).abs() < 1e-15);
/// ```
#[inline]
pub fn j0<R: Real>(x: R) -> R {
    if x.abs().to_f64() < SERIES_THRESHOLD {
        // j0 = Σ (−1)ⁿ x²ⁿ/(2n+1)!  ⇒ ratio (2n+2)(2n+3)
        series(x, R::ONE, |n| ((2 * n + 2) * (2 * n + 3)) as f64)
    } else {
        x.sin() / x
    }
}

/// Dipole radial function f₁(x) = sin(x)/x² − cos(x)/x (paper Eq. 15; = j₁).
///
/// # Example
///
/// ```
/// use pic_math::special::f1;
/// // Leading behaviour near the focus: f1(x) ≈ x/3.
/// assert!((f1(1e-4_f64) - 1e-4 / 3.0).abs() < 1e-12);
/// ```
#[inline]
pub fn f1<R: Real>(x: R) -> R {
    if x.abs().to_f64() < SERIES_THRESHOLD {
        // j1 = (x/3)·Σ tₙ with ratio (2n+2)(2n+5)
        series(x, x / R::from_f64(3.0), |n| {
            ((2 * n + 2) * (2 * n + 5)) as f64
        })
    } else {
        let (s, c) = x.sin_cos();
        s / (x * x) - c / x
    }
}

/// Dipole radial function f₂(x) = (3/x³ − 1/x)·sin(x) − 3cos(x)/x² (= j₂).
///
/// # Example
///
/// ```
/// use pic_math::special::f2;
/// // Leading behaviour near the focus: f2(x) ≈ x²/15.
/// assert!((f2(1e-3_f64) - 1e-6 / 15.0).abs() < 1e-13);
/// ```
#[inline]
pub fn f2<R: Real>(x: R) -> R {
    if x.abs().to_f64() < SERIES_THRESHOLD {
        // j2 = (x²/15)·Σ tₙ with ratio (2n+2)(2n+7)
        series(x, x * x / R::from_f64(15.0), |n| {
            ((2 * n + 2) * (2 * n + 7)) as f64
        })
    } else {
        let (s, c) = x.sin_cos();
        let inv = x.recip();
        let inv2 = inv * inv;
        (R::from_f64(3.0) * inv2 * inv - inv) * s - R::from_f64(3.0) * c * inv2
    }
}

/// Dipole radial function f₃(x) = (1/x − 1/x³)·sin(x) + cos(x)/x² (Eq. 15).
///
/// Equals j₀(x) − j₁(x)/x; tends to 2/3 at the focus.
///
/// # Example
///
/// ```
/// use pic_math::special::f3;
/// assert!((f3(1e-6_f64) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[inline]
pub fn f3<R: Real>(x: R) -> R {
    if x.abs().to_f64() < SERIES_THRESHOLD {
        // f3 = Σ (−1)ⁿ aₙ x²ⁿ, aₙ = 1/(2n+1)! − 1/(j₁ denom). The first few
        // coefficients are 2/3, 2/15, 1/140, 1/5670, 1/399168, 1/43243200;
        // the term ratio aₙ₊₁/aₙ = (2n+5) / ((2n+2)(2n+3)(2n+7)/(2n+... ))
        // has no compact closed form, so sum the two constituent series.
        j0(x)
            - if x == R::ZERO {
                R::from_f64(1.0 / 3.0)
            } else {
                f1(x) / x
            }
    } else {
        let (s, c) = x.sin_cos();
        let inv = x.recip();
        let inv2 = inv * inv;
        (inv - inv2 * inv) * s + c * inv2
    }
}

/// f₁(x)/x, continuous at the focus (limit 1/3). Needed because the dipole
/// field components divide by `R` (paper Eq. 14).
#[inline]
pub fn f1_over_x<R: Real>(x: R) -> R {
    if x.abs().to_f64() < SERIES_THRESHOLD {
        series(x, R::from_f64(1.0 / 3.0), |n| {
            ((2 * n + 2) * (2 * n + 5)) as f64
        })
    } else {
        f1(x) / x
    }
}

/// f₂(x)/x², continuous at the focus (limit 1/15). Needed because the
/// magnetic components of the dipole field divide by `R²` (paper Eq. 14).
#[inline]
pub fn f2_over_x2<R: Real>(x: R) -> R {
    if x.abs().to_f64() < SERIES_THRESHOLD {
        series(x, R::from_f64(1.0 / 15.0), |n| {
            ((2 * n + 2) * (2 * n + 7)) as f64
        })
    } else {
        f2(x) / (x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Closed forms evaluated in f64 well away from the cancellation zone.
    fn f1_ref(x: f64) -> f64 {
        x.sin() / (x * x) - x.cos() / x
    }
    fn f2_ref(x: f64) -> f64 {
        (3.0 / x.powi(3) - 1.0 / x) * x.sin() - 3.0 * x.cos() / (x * x)
    }
    fn f3_ref(x: f64) -> f64 {
        (1.0 / x - 1.0 / x.powi(3)) * x.sin() + x.cos() / (x * x)
    }

    #[test]
    fn series_matches_closed_form_at_handover() {
        // Both branches must agree near the threshold from either side.
        for &x in &[0.5, 0.8, 0.99, 1.01, 1.5, 3.0] {
            assert!((f1(x) - f1_ref(x)).abs() < 1e-13, "f1({x})");
            assert!((f2(x) - f2_ref(x)).abs() < 1e-13, "f2({x})");
            assert!((f3(x) - f3_ref(x)).abs() < 1e-13, "f3({x})");
        }
    }

    #[test]
    fn limits_at_focus() {
        assert_eq!(f1(0.0_f64), 0.0);
        assert_eq!(f2(0.0_f64), 0.0);
        assert!((f3(0.0_f64) - 2.0 / 3.0).abs() < 1e-15);
        assert!((f1_over_x(0.0_f64) - 1.0 / 3.0).abs() < 1e-15);
        assert!((f2_over_x2(0.0_f64) - 1.0 / 15.0).abs() < 1e-15);
        assert_eq!(j0(0.0_f64), 1.0);
    }

    #[test]
    fn no_cancellation_blowup_in_f32() {
        // The closed form of f2 in f32 loses everything below x ~ 3e-2;
        // the series branch must stay accurate.
        for &x in &[1e-6_f32, 1e-4, 1e-2, 0.1, 0.5, 0.9] {
            let exact = f2(x as f64) as f32;
            let got = f2(x);
            let denom = exact.abs().max(1e-30);
            assert!(
                (got - exact).abs() / denom < 1e-5,
                "f2({x}) = {got}, want {exact}"
            );
        }
    }

    #[test]
    fn f3_is_j0_minus_j1_over_x() {
        for &x in &[0.3_f64, 0.7, 2.0, 5.0] {
            let expect = j0(x) - f1(x) / x;
            assert!((f3(x) - expect).abs() < 1e-14, "x = {x}");
        }
    }

    #[test]
    fn odd_even_symmetry() {
        // f1 is odd; f2, f3 and j0 are even.
        for &x in &[0.2_f64, 0.9, 2.5] {
            assert!((f1(-x) + f1(x)).abs() < 1e-15);
            assert!((f2(-x) - f2(x)).abs() < 1e-15);
            assert!((f3(-x) - f3(x)).abs() < 1e-15);
            assert!((j0(-x) - j0(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn asymptotics_far_from_focus() {
        // For large x the functions decay like 1/x.
        for &x in &[50.0_f64, 500.0] {
            assert!(f1(x).abs() < 2.0 / x);
            assert!(f2(x).abs() < 2.0 / x);
            assert!(f3(x).abs() < 2.0 / x);
        }
    }
}

//! Three-component vectors (the paper's `FP3` type).

use crate::real::Real;
use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-vector over a [`Real`] scalar — the analogue of Hi-Chi's `FP3`.
///
/// The fields are public in the "C struct" spirit: `Vec3` is a passive
/// compound value with no invariants to protect.
///
/// # Example
///
/// ```
/// use pic_math::Vec3;
///
/// let e = Vec3::new(1.0_f64, 0.0, 0.0);
/// let b = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(e.cross(b), Vec3::new(0.0, 0.0, 1.0));
/// assert_eq!(e.dot(b), 0.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3<R> {
    /// x-component.
    pub x: R,
    /// y-component.
    pub y: R,
    /// z-component.
    pub z: R,
}

impl<R: Real> Vec3<R> {
    /// The zero vector.
    pub const fn zero() -> Self
    where
        R: Real,
    {
        // `R::ZERO` is not usable in a `const fn` over a trait, so zero()
        // is implemented via Default in `new_zero`; keep this const for the
        // concrete aliases below.
        Vec3 {
            x: R::ZERO,
            y: R::ZERO,
            z: R::ZERO,
        }
    }

    /// Creates a vector from components.
    #[inline(always)]
    pub fn new(x: R, y: R, z: R) -> Self {
        Vec3 { x, y, z }
    }

    /// A vector with all three components equal to `v`.
    #[inline(always)]
    pub fn splat(v: R) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline(always)]
    pub fn dot(self, o: Self) -> R {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline(always)]
    pub fn cross(self, o: Self) -> Self {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline(always)]
    pub fn norm2(self) -> R {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline(always)]
    pub fn norm(self) -> R {
        self.norm2().sqrt()
    }

    /// Unit vector in the same direction, or zero if the norm underflows.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n > R::ZERO {
            self / n
        } else {
            Vec3::splat(R::ZERO)
        }
    }

    /// Component-wise product (Hadamard).
    #[inline(always)]
    pub fn hadamard(self, o: Self) -> Self {
        Vec3 {
            x: self.x * o.x,
            y: self.y * o.y,
            z: self.z * o.z,
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Self) -> Self {
        Vec3 {
            x: self.x.min(o.x),
            y: self.y.min(o.y),
            z: self.z.min(o.z),
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        Vec3 {
            x: self.x.max(o.x),
            y: self.y.max(o.y),
            z: self.z.max(o.z),
        }
    }

    /// Largest absolute component.
    #[inline]
    pub fn max_abs(self) -> R {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Fused multiply-add: `self * a + b`, component-wise.
    #[inline(always)]
    pub fn mul_add(self, a: R, b: Self) -> Self {
        Vec3 {
            x: self.x.mul_add(a, b.x),
            y: self.y.mul_add(a, b.y),
            z: self.z.mul_add(a, b.z),
        }
    }

    /// Widens each component to `f64` (for diagnostics).
    #[inline]
    pub fn to_f64(self) -> Vec3<f64> {
        Vec3 {
            x: self.x.to_f64(),
            y: self.y.to_f64(),
            z: self.z.to_f64(),
        }
    }

    /// Converts each component from `f64` (for literals and setup code).
    #[inline]
    pub fn from_f64(v: Vec3<f64>) -> Self {
        Vec3 {
            x: R::from_f64(v.x),
            y: R::from_f64(v.y),
            z: R::from_f64(v.z),
        }
    }

    /// The components as a fixed-size array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [R; 3] {
        [self.x, self.y, self.z]
    }
}

impl<R: Real> From<[R; 3]> for Vec3<R> {
    #[inline]
    fn from(a: [R; 3]) -> Self {
        Vec3 {
            x: a[0],
            y: a[1],
            z: a[2],
        }
    }
}

impl<R: Real> From<Vec3<R>> for [R; 3] {
    #[inline]
    fn from(v: Vec3<R>) -> Self {
        v.to_array()
    }
}

impl<R: Real> Index<usize> for Vec3<R> {
    type Output = R;

    /// # Panics
    ///
    /// Panics if `i > 2`.
    #[inline]
    fn index(&self, i: usize) -> &R {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl<R: Real> IndexMut<usize> for Vec3<R> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut R {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl<R: Real> fmt::Display for Vec3<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl<R: Real> Add for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Vec3 {
            x: self.x + o.x,
            y: self.y + o.y,
            z: self.z + o.z,
        }
    }
}

impl<R: Real> Sub for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        Vec3 {
            x: self.x - o.x,
            y: self.y - o.y,
            z: self.z - o.z,
        }
    }
}

impl<R: Real> Neg for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Vec3 {
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }
}

impl<R: Real> Mul<R> for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, s: R) -> Self {
        Vec3 {
            x: self.x * s,
            y: self.y * s,
            z: self.z * s,
        }
    }
}

impl<R: Real> Div<R> for Vec3<R> {
    type Output = Self;
    #[inline(always)]
    fn div(self, s: R) -> Self {
        Vec3 {
            x: self.x / s,
            y: self.y / s,
            z: self.z / s,
        }
    }
}

impl<R: Real> AddAssign for Vec3<R> {
    #[inline(always)]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl<R: Real> SubAssign for Vec3<R> {
    #[inline(always)]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl<R: Real> MulAssign<R> for Vec3<R> {
    #[inline(always)]
    fn mul_assign(&mut self, s: R) {
        *self = *self * s;
    }
}

impl<R: Real> DivAssign<R> for Vec3<R> {
    #[inline(always)]
    fn div_assign(&mut self, s: R) {
        *self = *self / s;
    }
}

impl<R: Real> Sum for Vec3<R> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Vec3::splat(R::ZERO), |a, b| a + b)
    }
}

use std::iter::Sum;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0_f64, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0_f32, 1.0, 1.0);
        v += Vec3::splat(1.0);
        v -= Vec3::new(0.0, 1.0, 0.0);
        v *= 3.0;
        v /= 2.0;
        assert_eq!(v, Vec3::new(3.0, 1.5, 3.0));
    }

    #[test]
    fn dot_cross_identities() {
        let a = Vec3::new(1.0_f64, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        // a × b is orthogonal to both operands.
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
        // Lagrange identity |a×b|² = |a|²|b|² − (a·b)².
        let lhs = c.norm2();
        let rhs = a.norm2() * b.norm2() - a.dot(b) * a.dot(b);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0_f64, 4.0, 0.0);
        assert_eq!(v.norm2(), 25.0);
        assert_eq!(v.norm(), 5.0);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert_eq!(Vec3::<f64>::zero().normalized(), Vec3::zero());
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0_f64, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        v[2] = 9.0;
        assert_eq!(v.z, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::new(1.0_f64, 2.0, 3.0);
        let _ = v[3];
    }

    #[test]
    fn conversions() {
        let v = Vec3::from([1.0_f32, 2.0, 3.0]);
        let a: [f32; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
        let w: Vec3<f32> = Vec3::from_f64(v.to_f64());
        assert_eq!(w, v);
    }

    #[test]
    fn mul_add_and_hadamard() {
        let a = Vec3::new(1.0_f64, 2.0, 3.0);
        let b = Vec3::new(10.0, 20.0, 30.0);
        assert_eq!(a.mul_add(2.0, b), Vec3::new(12.0, 24.0, 36.0));
        assert_eq!(a.hadamard(b), Vec3::new(10.0, 40.0, 90.0));
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(-5.0_f64, 2.0, 3.0);
        let b = Vec3::new(1.0, -2.0, 4.0);
        assert_eq!(a.min(b), Vec3::new(-5.0, -2.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 2.0, 4.0));
        assert_eq!(a.max_abs(), 5.0);
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [Vec3::new(1.0_f64, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0)];
        let s: Vec3<f64> = vs.into_iter().sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 0.0));
    }
}

//! Summary statistics for the benchmark harness.
//!
//! The paper reports NSPS as "the average time of one iteration … divided by
//! the number of particles and by the number of steps". The harness also
//! needs dispersion measures to decide whether a run is stable, so this
//! module provides a [`Summary`] over a sample and a streaming
//! [`OnlineStats`] accumulator (Welford's algorithm).

/// Summary statistics of a sample of `f64` observations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (average of the two central order statistics for even n).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is empty or contains NaN.
    pub fn of(sample: &[f64]) -> Summary {
        assert!(!sample.is_empty(), "Summary::of: empty sample");
        assert!(
            sample.iter().all(|x| !x.is_nan()),
            "Summary::of: sample contains NaN"
        );
        let mut acc = OnlineStats::new();
        for &x in sample {
            acc.push(x);
        }
        let mut sorted = sample.to_vec();
        // lint: allow(unwrap-in-lib): the function rejects NaN input
        // before this point, so the comparison is total.
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Summary {
            count: n,
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// Relative dispersion `std_dev / mean` (0 when the mean is 0).
    pub fn rel_std_dev(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean.abs()
        }
    }
}

/// Streaming mean/variance accumulator (Welford).
///
/// # Example
///
/// ```
/// use pic_math::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator; 0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        // Sample std dev of 1..4 is sqrt(5/3).
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_element() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn summary_odd_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_nan_panics() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn welford_matches_naive() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut acc = OnlineStats::new();
        for &x in &data {
            acc.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((acc.mean() - mean).abs() < 1e-10);
        assert!((acc.variance() - var).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..57).map(|i| (i * i % 13) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let (a, b) = data.split_at(20);
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in a {
            left.push(x);
        }
        for &x in b {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn rel_std_dev() {
        let s = Summary::of(&[10.0, 10.0, 10.0]);
        assert_eq!(s.rel_std_dev(), 0.0);
    }
}

//! Physical constants in Gaussian (CGS) units, as used by Hi-Chi.
//!
//! The paper's equations (Maxwell's equations with `4π J`, the Lorentz force
//! with `v × B / c`) are written in Gaussian units; all quantities in this
//! reproduction follow the same convention:
//!
//! * length — centimetres, time — seconds, mass — grams,
//! * charge — statcoulombs, field — statvolt/cm (E and B share units).

/// Speed of light, cm/s.
pub const LIGHT_VELOCITY: f64 = 2.99792458e10;

/// Elementary charge, statC (esu).
pub const ELEMENTARY_CHARGE: f64 = 4.80320427e-10;

/// Electron rest mass, g.
pub const ELECTRON_MASS: f64 = 9.1093837015e-28;

/// Proton rest mass, g.
pub const PROTON_MASS: f64 = 1.67262192369e-24;

/// Electron charge (negative), statC.
pub const ELECTRON_CHARGE: f64 = -ELEMENTARY_CHARGE;

/// Electron rest energy m_e c², erg.
pub const ELECTRON_REST_ENERGY: f64 = ELECTRON_MASS * LIGHT_VELOCITY * LIGHT_VELOCITY;

/// One electron-volt, erg.
pub const EV: f64 = 1.602176634e-12;

/// One watt, erg/s.
pub const WATT: f64 = 1.0e7;

/// One petawatt, erg/s.
pub const PETAWATT: f64 = 1.0e22;

/// One micrometre, cm.
pub const MICRON: f64 = 1.0e-4;

/// One femtosecond, s.
pub const FEMTOSECOND: f64 = 1.0e-15;

/// Benchmark wave frequency ω₀ = 2.1×10¹⁵ s⁻¹ (paper §5.2).
pub const BENCH_OMEGA: f64 = 2.1e15;

/// Benchmark wavelength λ = 2πc/ω₀ ≈ 0.9 µm, in cm (paper §5.2).
pub const BENCH_WAVELENGTH: f64 = 2.0 * std::f64::consts::PI * LIGHT_VELOCITY / BENCH_OMEGA;

/// Benchmark wave power P = 0.1 PW, erg/s (paper §5.2).
pub const BENCH_POWER: f64 = 0.1 * PETAWATT;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_matches_paper() {
        // Paper §5.2: ω₀ = 2.1e15 s⁻¹ corresponds to λ = 0.9 µm.
        let lambda_um = BENCH_WAVELENGTH / MICRON;
        assert!((lambda_um - 0.9).abs() < 0.01, "λ = {lambda_um} µm");
    }

    #[test]
    fn rest_energy_is_511_kev() {
        let kev = ELECTRON_REST_ENERGY / EV / 1e3;
        assert!((kev - 511.0).abs() < 0.5, "m_e c² = {kev} keV");
    }

    #[test]
    fn petawatt_conversion() {
        assert_eq!(PETAWATT, 1e15 * WATT);
        assert_eq!(BENCH_POWER, 1e21);
    }

    #[test]
    fn classical_electron_radius_sanity() {
        // r_e = e²/(m_e c²) ≈ 2.8179e-13 cm — a cross-check that the charge,
        // mass and c values are mutually consistent in CGS.
        let re = ELEMENTARY_CHARGE * ELEMENTARY_CHARGE / ELECTRON_REST_ENERGY;
        assert!((re - 2.8179e-13).abs() / 2.8179e-13 < 1e-3, "r_e = {re}");
    }
}

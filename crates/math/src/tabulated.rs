//! Tabulated dipole radial functions — the classic optimization of the
//! Analytical-Fields scenario.
//!
//! The paper's analytical scenario recomputes sin/cos-heavy radial
//! functions for every particle every step. A standard trade (used in
//! production PIC codes when the field shape is fixed) is to tabulate
//! f₁(x)/x, f₂(x)/x² and f₃(x) once on a fine radial grid and linearly
//! interpolate — swapping transcendentals for two loads and a fused
//! multiply-add, i.e. moving the kernel *down* the roofline toward the
//! Precalculated scenario. [`RadialTable`] implements that trade with a
//! measurable accuracy bound.

use crate::real::Real;
use crate::special::{f1_over_x, f2_over_x2, f3};

/// Linear-interpolation tables of the three dipole radial functions over
/// `[0, x_max]`.
///
/// # Example
///
/// ```
/// use pic_math::tabulated::RadialTable;
/// use pic_math::special;
///
/// let table = RadialTable::<f64>::new(20.0, 4096);
/// let x = 3.7;
/// assert!((table.f3(x) - special::f3(x)).abs() < 1e-5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RadialTable<R> {
    x_max: R,
    inv_dx: R,
    f1x: Vec<R>,
    f2x2: Vec<R>,
    f3: Vec<R>,
}

impl<R: Real> RadialTable<R> {
    /// Builds tables with `nodes` samples over `[0, x_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `x_max` is not positive or `nodes < 2`.
    pub fn new(x_max: f64, nodes: usize) -> RadialTable<R> {
        assert!(x_max > 0.0, "RadialTable: non-positive x_max");
        assert!(nodes >= 2, "RadialTable: need at least 2 nodes");
        let dx = x_max / (nodes - 1) as f64;
        let sample = |f: fn(f64) -> f64| -> Vec<R> {
            (0..nodes).map(|i| R::from_f64(f(i as f64 * dx))).collect()
        };
        RadialTable {
            x_max: R::from_f64(x_max),
            inv_dx: R::from_f64(1.0 / dx),
            f1x: sample(f1_over_x::<f64>),
            f2x2: sample(f2_over_x2::<f64>),
            f3: sample(f3::<f64>),
        }
    }

    /// Upper end of the tabulated range.
    pub fn x_max(&self) -> R {
        self.x_max
    }

    /// Number of table nodes.
    pub fn nodes(&self) -> usize {
        self.f1x.len()
    }

    #[inline(always)]
    fn lookup(&self, table: &[R], x: R) -> R {
        // Clamp into range; arguments beyond x_max evaluate at the edge
        // (callers size x_max to cover their domain).
        let s = x.abs() * self.inv_dx;
        let base = s.floor().min(R::from_usize(table.len() - 2));
        let frac = (s - base).clamp(R::ZERO, R::ONE);
        let i = base.to_f64() as usize;
        // bounds: `base` is clamped to `table.len() - 2` above, so both `i`
        // and `i + 1` are in range.
        table[i] + (table[i + 1] - table[i]) * frac
    }

    /// Interpolated f₁(x)/x (even function; |x| is used).
    #[inline(always)]
    pub fn f1_over_x(&self, x: R) -> R {
        self.lookup(&self.f1x, x)
    }

    /// Interpolated f₂(x)/x².
    #[inline(always)]
    pub fn f2_over_x2(&self, x: R) -> R {
        self.lookup(&self.f2x2, x)
    }

    /// Interpolated f₃(x).
    #[inline(always)]
    pub fn f3(&self, x: R) -> R {
        self.lookup(&self.f3, x)
    }

    /// Worst absolute interpolation error against the direct evaluation,
    /// probed at `probes` midpoints (the worst case for linear
    /// interpolation).
    pub fn max_error(&self, probes: usize) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..probes {
            let x = (i as f64 + 0.5) / probes as f64 * self.x_max.to_f64();
            let xr = R::from_f64(x);
            worst = worst
                .max((self.f1_over_x(xr).to_f64() - f1_over_x(x)).abs())
                .max((self.f2_over_x2(xr).to_f64() - f2_over_x2(x)).abs())
                .max((self.f3(xr).to_f64() - f3(x)).abs());
        }
        worst
    }

    /// Memory footprint of the tables, bytes — what the optimization adds
    /// to the working set.
    pub fn memory_bytes(&self) -> usize {
        3 * self.nodes() * R::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_is_accurate_at_fine_resolution() {
        let t = RadialTable::<f64>::new(20.0, 8192);
        assert!(t.max_error(5000) < 1e-6, "max error {}", t.max_error(5000));
    }

    #[test]
    fn error_shrinks_quadratically_with_nodes() {
        // Linear interpolation: halving dx quarters the error.
        let coarse = RadialTable::<f64>::new(10.0, 512).max_error(2000);
        let fine = RadialTable::<f64>::new(10.0, 1024).max_error(2000);
        let ratio = coarse / fine;
        assert!((3.0..5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn exact_at_nodes() {
        let t = RadialTable::<f64>::new(8.0, 33);
        let dx = 8.0 / 32.0;
        for i in 0..33 {
            let x = i as f64 * dx;
            assert!((t.f3(x) - f3(x)).abs() < 1e-15, "node {i}");
        }
    }

    #[test]
    fn focus_limits_are_preserved() {
        let t = RadialTable::<f64>::new(20.0, 4096);
        assert!((t.f1_over_x(0.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((t.f2_over_x2(0.0) - 1.0 / 15.0).abs() < 1e-12);
        assert!((t.f3(0.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_arguments_use_even_symmetry() {
        let t = RadialTable::<f64>::new(20.0, 4096);
        assert_eq!(t.f3(-3.0), t.f3(3.0));
        assert_eq!(t.f1_over_x(-1.5), t.f1_over_x(1.5));
    }

    #[test]
    fn beyond_range_clamps_to_edge() {
        let t = RadialTable::<f64>::new(5.0, 256);
        let edge = t.f3(5.0);
        assert_eq!(t.f3(50.0), edge);
    }

    #[test]
    fn works_in_single_precision() {
        let t = RadialTable::<f32>::new(20.0, 4096);
        assert!((t.f3(2.0f32) - f3(2.0f64) as f32).abs() < 1e-4);
        assert_eq!(t.memory_bytes(), 3 * 4096 * 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn too_few_nodes_panics() {
        let _ = RadialTable::<f64>::new(1.0, 1);
    }
}

//! Extension demo: a pulsed focused Gaussian beam with radiation reaction.
//!
//! ```text
//! cargo run --release --example pulsed_beam
//! ```
//!
//! Combines three extension features built on top of the paper's kernel:
//! the paraxial [`GaussianBeam`] source, a [`Sin2Ramp`]/[`GaussianEnvelope`]
//! temporal envelope, and the Landau–Lifshitz radiation-reaction pusher —
//! the ingredients of the "radiative trapping" regime the paper's group
//! studies at higher powers (their Ref. [25]).

use pic_boris::diag::{max_gamma, mean_gamma};
use pic_boris::{AnalyticalSource, BorisPusher, PushKernel, RadiationReactionPusher};
use pic_fields::{Enveloped, GaussianBeam, GaussianEnvelope};
use pic_math::constants::{BENCH_OMEGA, LIGHT_VELOCITY, MICRON};
use pic_math::units::{a0_from_field, field_from_a0};
use pic_math::Vec3;
use pic_particles::init::{fill_box_beam, BoxDist};
use pic_particles::{ParticleAccess, SoaEnsemble, SpeciesTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let table = SpeciesTable::<f64>::with_standard_species();
    let electron = *table.get(SpeciesTable::<f64>::ELECTRON);

    // An a₀ = 100 beam (radiation reaction matters) with a 3 µm waist and
    // a 20 fs Gaussian envelope.
    let a0 = 100.0;
    let peak_field = field_from_a0(a0, BENCH_OMEGA);
    let beam = GaussianBeam::<f64>::new(peak_field, BENCH_OMEGA, 3.0 * MICRON);
    let pulse = Enveloped {
        carrier: beam,
        envelope: GaussianEnvelope {
            center: 40.0e-15,
            sigma: 8.5e-15,
        },
    };

    // A counter-propagating 50 MeV electron bunch (γ ≈ 100) heading into
    // the pulse.
    let n = 2_000;
    let mut bunch = SoaEnsemble::<f64>::new();
    fill_box_beam(
        &mut bunch,
        n,
        &BoxDist {
            min: Vec3::new(-MICRON, -MICRON, 4.0 * MICRON),
            max: Vec3::new(1.0 * MICRON, 1.0 * MICRON, 6.0 * MICRON),
        },
        -100.0, // γβ along −z
        Vec3::new(0.0, 0.0, 1.0),
        1.0,
        SpeciesTable::<f64>::ELECTRON,
        &electron,
        &mut StdRng::seed_from_u64(7),
    );
    let mut bunch_rr = bunch.clone();

    let period = 2.0 * std::f64::consts::PI / BENCH_OMEGA;
    let dt = period / 400.0;
    let steps = (80.0e-15 / dt) as usize;

    println!(
        "pulsed Gaussian beam: a₀ = {:.0} (E₀ = {:.2e} statV/cm), w₀ = 3 µm, 20 fs FWHM-ish",
        a0_from_field(peak_field, BENCH_OMEGA),
        peak_field
    );
    println!("electron bunch: {n} electrons, γ₀ = 100, counter-propagating\n");

    let mut plain = PushKernel::new(AnalyticalSource::new(&pulse), BorisPusher, &table, dt);
    let mut rr = PushKernel::new(
        AnalyticalSource::new(&pulse),
        RadiationReactionPusher::new(BorisPusher),
        &table,
        dt,
    );
    for _ in 0..steps {
        bunch.for_each_mut(&mut plain);
        plain.advance_time();
        bunch_rr.for_each_mut(&mut rr);
        rr.advance_time();
    }

    let (g_plain, g_rr) = (mean_gamma(&bunch), mean_gamma(&bunch_rr));
    println!("after {steps} steps ({:.0} fs):", steps as f64 * dt * 1e15);
    println!(
        "  mean γ  without RR: {g_plain:8.2}   max γ: {:.1}",
        max_gamma(&bunch)
    );
    println!(
        "  mean γ  with    RR: {g_rr:8.2}   max γ: {:.1}",
        max_gamma(&bunch_rr)
    );
    println!(
        "  radiative energy loss: {:.1}% of the bunch kinetic energy",
        100.0 * (g_plain - g_rr) / (g_plain - 1.0)
    );
    assert!(
        g_rr < g_plain,
        "radiation reaction must cool the counter-propagating bunch"
    );
    // Velocities stay physical.
    for i in 0..bunch_rr.len() {
        let p = bunch_rr.get(i);
        assert!(p.velocity(&electron).norm() < LIGHT_VELOCITY);
    }
    println!("\nRR cools the bunch in the strong-field region — the effect the classical");
    println!("benchmark (P = 0.1 PW, paper §5.2) deliberately stays below.");
}

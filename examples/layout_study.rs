//! AoS vs SoA on this host: the paper's §3 data-layout comparison, live.
//!
//! ```text
//! cargo run --release --example layout_study
//! ```
//!
//! Runs the benchmark kernel over both layouts and both scenarios,
//! measures wall-clock NSPS, and verifies that the trajectories are
//! bitwise identical (the proxy abstraction guarantees the same
//! arithmetic regardless of storage).

use pic_bench::{bench_dt, build_ensemble, dipole_wave};
use pic_bench::{measure_nsps, BenchConfig};
use pic_boris::{AnalyticalSource, BorisPusher, PushKernel};
use pic_particles::{AosEnsemble, Layout, ParticleAccess, SoaEnsemble, SpeciesTable};
use pic_perfmodel::Scenario;
use pic_runtime::{Schedule, Topology};

fn main() {
    let cfg = BenchConfig {
        particles: 50_000,
        steps_per_iteration: 20,
        iterations: 4,
    };
    let topo = Topology::default();

    println!(
        "layout study: {} particles x {} steps x {} iterations, float, {} thread(s)\n",
        cfg.particles,
        cfg.steps_per_iteration,
        cfg.iterations,
        topo.total_threads()
    );
    println!(
        "{:<22} {:>10} {:>10}",
        "configuration", "AoS NSPS", "SoA NSPS"
    );
    for scenario in Scenario::all() {
        let aos =
            measure_nsps::<f32>(Layout::Aos, scenario, &cfg, &topo, Schedule::dynamic()).nsps();
        let soa =
            measure_nsps::<f32>(Layout::Soa, scenario, &cfg, &topo, Schedule::dynamic()).nsps();
        println!("{:<22} {aos:>10.2} {soa:>10.2}", scenario.to_string());
    }

    // Trajectory parity: the proxy abstraction makes the kernels
    // arithmetic-identical across layouts.
    let table = SpeciesTable::<f64>::with_standard_species();
    let wave = dipole_wave::<f64>();
    let dt = bench_dt();
    let mut aos: AosEnsemble<f64> = build_ensemble(5_000, 123);
    let mut soa: SoaEnsemble<f64> = build_ensemble(5_000, 123);
    let mut ka = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
    let mut ks = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
    for _ in 0..50 {
        aos.for_each_mut(&mut ka);
        ka.advance_time();
        soa.for_each_mut(&mut ks);
        ks.advance_time();
    }
    let identical = (0..aos.len()).all(|i| aos.get(i) == soa.get(i));
    println!("\ntrajectories bitwise identical across layouts after 50 steps: {identical}");
    assert!(identical);
    println!(
        "\nOn CPUs the paper finds the layouts nearly equivalent (memory-bound kernel);\n\
         on GPUs SoA wins by ≥1.5-2x — run `cargo bench -p pic-bench --bench table3`."
    );
}

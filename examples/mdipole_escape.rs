//! The paper's physics study (§5.2): electron escape from the focal
//! region of a standing m-dipole wave at P = 0.1 PW.
//!
//! ```text
//! cargo run --release --example mdipole_escape
//! ```
//!
//! 10⁴ electrons start at rest, uniformly distributed in a sphere of
//! radius 0.6λ around the focus; the standing wave shakes them and the
//! strong field inhomogeneity expels them. The program prints the
//! fraction remaining inside the focal region after each wave period —
//! the quantity the authors use to choose seed-target parameters for
//! vacuum-breakdown experiments.

use pic_boris::diag::{fraction_inside_sphere, gamma_spectrum, max_gamma, mean_gamma};
use pic_boris::{AnalyticalSource, BorisPusher, PushKernel};
use pic_fields::DipoleStandingWave;
use pic_math::constants::{BENCH_OMEGA, BENCH_POWER, BENCH_WAVELENGTH};
use pic_math::Vec3;
use pic_particles::init::{fill_sphere_at_rest, SphereDist};
use pic_particles::{ParticleAccess, SoaEnsemble, SpeciesTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 10_000;
    let periods = 8;
    let steps_per_period = 200;

    let table = SpeciesTable::<f64>::with_standard_species();
    let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
    let radius = 0.6 * BENCH_WAVELENGTH;

    let mut electrons = SoaEnsemble::<f64>::new();
    fill_sphere_at_rest(
        &mut electrons,
        n,
        &SphereDist {
            center: Vec3::zero(),
            radius,
        },
        1.0,
        SpeciesTable::<f64>::ELECTRON,
        &mut StdRng::seed_from_u64(2021),
    );

    let period = 2.0 * std::f64::consts::PI / BENCH_OMEGA;
    let dt = period / steps_per_period as f64;
    let mut kernel = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);

    println!(
        "m-dipole standing wave, P = 0.1 PW, λ = {:.2} µm, A₀ = {:.2e} statV/cm",
        BENCH_WAVELENGTH * 1.0e4,
        wave.amplitude()
    );
    println!("{n} electrons at rest in a sphere of r = 0.6λ\n");
    println!("period  inside(r<0.6λ)  inside(r<1.2λ)  mean γ   max γ");

    for p in 0..=periods {
        if p > 0 {
            for _ in 0..steps_per_period {
                electrons.for_each_mut(&mut kernel);
                kernel.advance_time();
            }
        }
        println!(
            "{p:>6}  {:>14.3}  {:>14.3}  {:>7.2}  {:>6.1}",
            fraction_inside_sphere(&electrons, Vec3::zero(), radius),
            fraction_inside_sphere(&electrons, Vec3::zero(), 2.0 * radius),
            mean_gamma(&electrons),
            max_gamma(&electrons),
        );
    }

    // Final γ spectrum (weighted, 12 bins).
    let spectrum = gamma_spectrum(&electrons, 12, 1.2 * max_gamma(&electrons));
    println!("\nfinal γ spectrum:");
    let peak = spectrum
        .counts
        .iter()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1.0);
    for (i, &c) in spectrum.counts.iter().enumerate() {
        let bar = "#".repeat((c / peak * 40.0) as usize);
        println!("  γ ≈ {:>6.1}  {:>6.0}  {bar}", spectrum.bin_center(i), c);
    }

    let final_frac = fraction_inside_sphere(&electrons, Vec3::zero(), radius);
    println!(
        "\nAfter {periods} wave periods {:.1}% of the seed electrons remain in the focal \
         region",
        100.0 * final_frac
    );
    println!(
        "(relativistic fields at 0.1 PW expel particles quickly — the regime the paper \
         §5.2 targets)."
    );
}

//! Shard strong scaling on this host, next to the perfmodel prediction.
//!
//! ```text
//! cargo run --release --example shard_scaling
//! PIC_SHARD_PARTICLES=1000000 PIC_SHARD_STEPS=10 cargo run --release --example shard_scaling
//! PIC_SHARD_OUT=BENCH_10.json cargo run --release --example shard_scaling
//! ```
//!
//! Submits the same over-threshold job to `pic-serve` at several shard
//! counts K — with shard pinning off and on — and prints, for each K,
//! the merged NSPS the service reports (the slowest shard's run time
//! over the whole job's particle-steps — the critical path a K-worker
//! machine would observe), the measured end-to-end wall time on *this*
//! host, and the gather time the scheduler spent merging shard results.
//! A second sweep holds K fixed and grows the particle count to show
//! the columnar gather's cost staying flat: shards hand back typed
//! column segments, and when nobody asks for the merged text (no
//! `return_particles`, no cache) the gather renders nothing at all.
//! Alongside, the calibrated `pic-perfmodel` CPU model prints the
//! Fig. 1 strong-scaling speedups for the paper's 48-core node — the
//! curve a shard-per-core deployment is modeled to follow.
//!
//! With `PIC_SHARD_OUT` set (default `BENCH_10.json`), every merged
//! parent / monolithic record of both sweeps is written as telemetry
//! JSON lines for the regression gate and the CI artifact.
//!
//! Shard-count invariance (the merged dump is bitwise-identical at
//! every K, pinned or not) is proven by
//! `crates/serve/tests/shard_invariance.rs`; this example is about the
//! performance side of the same decomposition.

use std::time::Instant;

use pic_particles::Layout;
use pic_perfmodel::{CpuModel, Parallelization, Precision, Scenario};
use pic_serve::{JobReport, JobSpec, Outcome, ServeConfig, Server};
use pic_telemetry::{write_records, BenchRecord};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs one sharded job and returns its report, the end-to-end wall
/// time in ms, and the merged-parent (or monolithic) telemetry records.
fn run_once(
    particles: usize,
    steps: usize,
    workers: usize,
    shards: usize,
    pinned: bool,
    label: &str,
) -> (JobReport, f64, Vec<BenchRecord>) {
    let cfg = ServeConfig {
        workers,
        cache_capacity: 0, // every configuration must run for real
        shard_threshold: 1000,
        shards,
        pinned,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, label);
    let spec = JobSpec {
        particles,
        steps,
        seed: 99,
        ..JobSpec::default()
    };
    let start = Instant::now();
    let outcome = server.submit(spec, None).expect("admitted").wait();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let out = server.shutdown();
    let Outcome::Completed(report) = outcome else {
        panic!("{label}: job did not complete: {outcome:?}");
    };
    let parents: Vec<BenchRecord> = out
        .records
        .into_iter()
        .filter(|r| r.shard_id == 0)
        .collect();
    (report, wall_ms, parents)
}

fn main() {
    let particles = env_usize("PIC_SHARD_PARTICLES", 1_000_000);
    let steps = env_usize("PIC_SHARD_STEPS", 10);
    let workers = env_usize("PIC_SHARD_WORKERS", 4);
    let out_path = std::env::var("PIC_SHARD_OUT").unwrap_or_else(|_| "BENCH_10.json".to_string());

    println!("=== Modeled shard-per-core speedup (Endeavour node, Precalculated/SoA/float) ===");
    let model = CpuModel::endeavour();
    let curve = model.speedup_curve(
        Scenario::Precalculated,
        Layout::Soa,
        Precision::F32,
        Parallelization::DpcppNuma,
    );
    for k in [1usize, 2, 4, 8, 16, 32, 48] {
        if let Some(s) = curve.get(k - 1) {
            println!("  K={k:<2}  S(K)={s:.2}");
        }
    }

    let mut records: Vec<BenchRecord> = Vec::new();

    println!();
    println!(
        "=== Measured on this host: {particles} particles x {steps} steps, \
         {workers} workers ==="
    );
    for pinned in [false, true] {
        let mode = if pinned { "pinned" } else { "unpinned" };
        println!("--- {mode} ---");
        let mut base_wall = None;
        for k in [1usize, 2, 4, 8] {
            let label = format!("shard-scaling-{mode}-k{k}");
            let (report, wall_ms, parents) = run_once(particles, steps, workers, k, pinned, &label);
            let base = *base_wall.get_or_insert(wall_ms);
            println!(
                "  K={k:<2}  shards={:<2}  merged NSPS={:.3}  wall={wall_ms:.0} ms  \
                 S(K)={:.2}  gather={} ns",
                report.shards,
                report.nsps,
                base / wall_ms,
                report.gather_ns,
            );
            records.extend(parents);
        }
    }

    println!();
    println!("=== Gather cost vs particle count (K=4, no dump requested) ===");
    for pinned in [false, true] {
        let mode = if pinned { "pinned" } else { "unpinned" };
        for n in [particles / 8, particles / 4, particles / 2, particles] {
            let label = format!("gather-sweep-{mode}-n{n}");
            let (report, _, parents) = run_once(n, steps, workers, 4, pinned, &label);
            println!("  {mode:<9} N={n:<9}  gather={} ns", report.gather_ns);
            records.extend(parents);
        }
    }

    match write_records(std::path::Path::new(&out_path), &records) {
        Ok(()) => println!("\nwrote {} records to {out_path}", records.len()),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}

//! Shard strong scaling on this host, next to the perfmodel prediction.
//!
//! ```text
//! cargo run --release --example shard_scaling
//! PIC_SHARD_PARTICLES=1000000 PIC_SHARD_STEPS=10 cargo run --release --example shard_scaling
//! ```
//!
//! Submits the same over-threshold job to `pic-serve` at several shard
//! counts K and prints, for each K, the merged NSPS the service reports
//! (the slowest shard's run time over the whole job's particle-steps —
//! the critical path a K-worker machine would observe) and the measured
//! end-to-end wall time on *this* host. Alongside, the calibrated
//! `pic-perfmodel` CPU model prints the Fig. 1 strong-scaling speedups
//! for the paper's 48-core node — the curve a shard-per-core deployment
//! is modeled to follow.
//!
//! Shard-count invariance (the merged dump is bitwise-identical at
//! every K) is proven by `crates/serve/tests/shard_invariance.rs`; this
//! example is about the performance side of the same decomposition.

use std::time::Instant;

use pic_particles::Layout;
use pic_perfmodel::{CpuModel, Parallelization, Precision, Scenario};
use pic_serve::{JobSpec, Outcome, ServeConfig, Server};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let particles = env_usize("PIC_SHARD_PARTICLES", 1_000_000);
    let steps = env_usize("PIC_SHARD_STEPS", 10);
    let workers = env_usize("PIC_SHARD_WORKERS", 4);

    println!("=== Modeled shard-per-core speedup (Endeavour node, Precalculated/SoA/float) ===");
    let model = CpuModel::endeavour();
    let curve = model.speedup_curve(
        Scenario::Precalculated,
        Layout::Soa,
        Precision::F32,
        Parallelization::DpcppNuma,
    );
    for k in [1usize, 2, 4, 8, 16, 32, 48] {
        if let Some(s) = curve.get(k - 1) {
            println!("  K={k:<2}  S(K)={s:.2}");
        }
    }

    println!();
    println!(
        "=== Measured on this host: {particles} particles x {steps} steps, \
         {workers} workers ==="
    );
    let mut base_wall = None;
    for k in [1usize, 2, 4, 8] {
        let cfg = ServeConfig {
            workers,
            cache_capacity: 0, // every K must run for real
            shard_threshold: 1000,
            shards: k,
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, &format!("shard-scaling-k{k}"));
        let spec = JobSpec {
            particles,
            steps,
            seed: 99,
            ..JobSpec::default()
        };
        let start = Instant::now();
        let outcome = server.submit(spec, None).expect("admitted").wait();
        let wall = start.elapsed();
        server.shutdown();
        let Outcome::Completed(report) = outcome else {
            panic!("K={k}: job did not complete: {outcome:?}");
        };
        let wall_ms = wall.as_secs_f64() * 1e3;
        let base = *base_wall.get_or_insert(wall_ms);
        println!(
            "  K={k:<2}  shards={:<2}  merged NSPS={:.3}  wall={wall_ms:.0} ms  S(K)={:.2}",
            report.shards,
            report.nsps,
            base / wall_ms,
        );
    }
}

//! A complete self-consistent PIC run: cold Langmuir oscillation.
//!
//! ```text
//! cargo run --release --example full_pic
//! ```
//!
//! The pusher is one stage of the PIC loop (paper §2); this example runs
//! the whole loop — CIC gather from a Yee grid, Boris push, Esirkepov
//! charge-conserving current deposition, FDTD field update — on the
//! classic validation problem: a cold uniform electron plasma displaced
//! with a small drift oscillates at ω_p = √(4πne²/m).

use pic_math::constants::{ELECTRON_MASS, ELEMENTARY_CHARGE, LIGHT_VELOCITY};
use pic_math::Vec3;
use pic_particles::{Particle, ParticleStore, SoaEnsemble, SpeciesTable};
use pic_sim::sim::CurrentScheme;
use pic_sim::{PicParams, PicSimulation};

fn main() {
    // Target plasma frequency and grid.
    let omega_p = 6.0e9; // rad/s
    let dims = [8usize, 8, 8];
    let spacing = Vec3::splat(1.0); // cm
    let dt = 1.0e-11; // s, well under the Courant limit (~1.9e-11)

    // Density from ω_p² = 4πne²/m; one macroparticle per cell.
    let n = omega_p * omega_p * ELECTRON_MASS
        / (4.0 * std::f64::consts::PI * ELEMENTARY_CHARGE * ELEMENTARY_CHARGE);
    let weight = n * spacing.x * spacing.y * spacing.z;
    let v0 = 1.0e-3 * LIGHT_VELOCITY;

    let mut electrons = SoaEnsemble::<f64>::new();
    for k in 0..dims[2] {
        for j in 0..dims[1] {
            for i in 0..dims[0] {
                electrons.push(Particle::new(
                    Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5),
                    Vec3::new(ELECTRON_MASS * v0, 0.0, 0.0),
                    weight,
                    SpeciesTable::<f64>::ELECTRON,
                    ELECTRON_MASS,
                ));
            }
        }
    }

    let params = PicParams {
        dims,
        min: Vec3::zero(),
        spacing,
        dt,
        scheme: CurrentScheme::Esirkepov,
        boundary: pic_sim::ParticleBoundary::Periodic,
        solver: pic_sim::FieldSolverKind::Fdtd,
        interp: pic_fields::InterpOrder::Cic,
    };
    let mut sim = PicSimulation::new(params, electrons, SpeciesTable::with_standard_species());

    println!("cold plasma: n = {n:.3e} cm⁻³, expected ω_p = {omega_p:.3e} rad/s");
    println!("grid 8³, Δt = {dt:.1e} s, Esirkepov deposition\n");

    // Run ~3 periods, tracking the uniform-mode Ex.
    let steps = 320;
    let mut ex_history = Vec::with_capacity(steps);
    let e_initial = sim.energy().total();
    for _ in 0..steps {
        sim.step();
        let data = sim.grid().ex.data();
        ex_history.push(data.iter().sum::<f64>() / data.len() as f64);
    }

    // Frequency from zero crossings.
    let mut crossings = Vec::new();
    for i in 1..ex_history.len() {
        let (a, b) = (ex_history[i - 1], ex_history[i]);
        if a.signum() != b.signum() {
            crossings.push(i as f64 - b / (b - a));
        }
    }
    let intervals: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
    let half_period = intervals.iter().sum::<f64>() / intervals.len() as f64;
    let omega_measured = std::f64::consts::PI / (half_period * dt);

    let e_final = sim.energy().total();
    println!(
        "measured ω   = {omega_measured:.3e} rad/s ({:+.2}% vs theory)",
        100.0 * (omega_measured - omega_p) / omega_p
    );
    println!(
        "energy drift = {:+.2}% over {steps} steps",
        100.0 * (e_final - e_initial) / e_initial
    );
    println!(
        "field energy = {:.3e} erg, kinetic = {:.3e} erg",
        sim.energy().field,
        sim.energy().kinetic
    );

    // A rough ASCII trace of the oscillation.
    println!("\nmean Ex(t):");
    let max = ex_history.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    for chunk in ex_history.chunks(4).take(40) {
        let v = chunk[0] / max;
        let col = ((v + 1.0) * 30.0) as usize;
        println!("{}*", " ".repeat(col));
    }
}

//! Quickstart: push one electron around a magnetic field line.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the smallest possible use of the library: a species table,
//! a particle, a uniform field and the Boris pusher, with the two
//! invariants the scheme guarantees (|p| preservation in a pure magnetic
//! field, cyclotron frequency).

use pic_boris::{BorisPusher, Pusher};
use pic_fields::{FieldSampler, UniformFields};
use pic_math::constants::{ELECTRON_MASS, ELEMENTARY_CHARGE, LIGHT_VELOCITY};
use pic_math::Vec3;
use pic_particles::{Particle, SpeciesTable};

fn main() {
    let table = SpeciesTable::<f64>::with_standard_species();
    let electron = *table.get(SpeciesTable::<f64>::ELECTRON);

    // A 1 kG field along z and an electron with p ⊥ B.
    let b_gauss = 1.0e3;
    let field = UniformFields::magnetic(Vec3::new(0.0, 0.0, b_gauss));
    let p0 = 1.0e-2 * ELECTRON_MASS * LIGHT_VELOCITY; // β ≈ 0.01
    let mut p = Particle::new(
        Vec3::zero(),
        Vec3::new(p0, 0.0, 0.0),
        1.0,
        SpeciesTable::<f64>::ELECTRON,
        electron.mass,
    );

    // Integrate one cyclotron period with 200 steps.
    let omega_c = ELEMENTARY_CHARGE * b_gauss / (ELECTRON_MASS * LIGHT_VELOCITY * p.gamma);
    let period = 2.0 * std::f64::consts::PI / omega_c;
    let steps = 200;
    let dt = period / steps as f64;

    println!("electron in B = {b_gauss} G:");
    println!("  cyclotron period  : {:.3e} s", period);
    println!(
        "  expected gyroradius: {:.3e} cm",
        p0 * LIGHT_VELOCITY / (ELEMENTARY_CHARGE * b_gauss)
    );

    let mut max_y: f64 = 0.0;
    for step in 0..steps {
        let eb = field.sample(p.position, dt * step as f64);
        BorisPusher.push(&mut p, &eb, &electron, dt);
        max_y = max_y.max(p.position.y.abs());
    }

    println!("  orbit diameter     : {:.3e} cm (from max |y|)", max_y);
    println!(
        "  |p| relative drift : {:.2e}  (Boris preserves |p| exactly)",
        (p.momentum.norm() - p0).abs() / p0
    );
    println!(
        "  closure error      : {:.3e} cm (distance from start after one period)",
        p.position.norm()
    );

    assert!((p.momentum.norm() - p0).abs() / p0 < 1e-12);
    println!("done.");
}

//! Heterogeneous offload through the oneAPI-like device layer (paper §4.2).
//!
//! ```text
//! cargo run --release --example device_offload
//! ```
//!
//! The same Boris kernel is submitted to the host CPU and to the two
//! simulated Intel GPUs. The physics is identical on every device (the
//! simulated GPUs execute the kernel functionally); the event timings show
//! the modeled device performance, including the first-launch JIT penalty.

use pic_boris::{AnalyticalSource, BorisPusher, SharedPushKernel};
use pic_device::{Device, Queue, SweepProfile};
use pic_math::constants::BENCH_OMEGA;
use pic_particles::{Layout, ParticleAccess, SoaEnsemble, SpeciesTable};
use pic_perfmodel::{Precision, Scenario};
use pic_runtime::{Schedule, Topology};

fn main() {
    let n = 50_000;
    let steps = 5;
    let table = SpeciesTable::<f32>::with_standard_species();
    let wave =
        pic_fields::DipoleStandingWave::<f32>::new(pic_math::constants::BENCH_POWER, BENCH_OMEGA);
    let source = AnalyticalSource::new(&wave);
    let dt = (2.0 * std::f64::consts::PI / BENCH_OMEGA / 100.0) as f32;
    let profile = SweepProfile::new(Scenario::Analytical, Layout::Soa, Precision::F32);

    println!("devices visible to the runtime:");
    for d in Device::enumerate() {
        println!(
            "  - {}{}",
            d.name(),
            if d.is_gpu() { " [simulated GPU]" } else { "" }
        );
    }
    println!();

    let devices = [
        Device::host(Topology::default(), Schedule::dynamic()),
        Device::p630(),
        Device::iris_xe_max(),
    ];

    let mut reference: Option<SoaEnsemble<f32>> = None;
    for device in devices {
        let name = device.name().to_string();
        let mut queue = Queue::new(device);
        let mut ens: SoaEnsemble<f32> = pic_bench::build_ensemble(n, 7);
        let mut events = Vec::new();
        let mut time = 0.0f32;
        for _ in 0..steps {
            let shared = SharedPushKernel {
                source: &source,
                pusher: BorisPusher,
                table: &table,
                dt,
                time,
            };
            events.push(queue.submit_sweep(&mut ens, profile, |_| shared.to_kernel()));
            time += dt;
        }

        println!("{name}:");
        for (i, e) in events.iter().enumerate() {
            match e.modeled_ns {
                Some(_) => println!(
                    "  step {i}: modeled {:6.2} ns/particle{}",
                    e.ns_per_particle(),
                    if e.first_launch {
                        "  (first launch: JIT)"
                    } else {
                        ""
                    }
                ),
                None => println!(
                    "  step {i}: measured {:6.2} ns/particle (host wall clock)",
                    e.ns_per_particle()
                ),
            }
        }

        // Physics parity across devices.
        match &reference {
            None => reference = Some(ens),
            Some(r) => {
                let identical = (0..n).all(|i| r.get(i) == ens.get(i));
                println!("  results bitwise identical to host: {identical}");
                assert!(identical);
            }
        }
        println!();
    }
    println!(
        "every device ran the same kernel on the same data — the portability the paper \
              demonstrates with DPC++."
    );
}

//! Heterogeneous offload through the device execution backend: the
//! Table 3 cells end to end (paper §4.2, §5.2).
//!
//! ```text
//! cargo run --release --example device_offload
//! ```
//!
//! The m-dipole benchmark is driven through [`pic_device::DeviceExecutor`]
//! on both modeled GPUs, for both particle layouts and both field
//! scenarios, and the modeled NSPS is printed beside the paper's
//! published Table 3 numbers and a real host measurement of the same
//! kernel. A final parity pass proves the offloaded trajectories are
//! bitwise identical to the host fast path — the portability claim the
//! paper demonstrates with DPC++, made checkable.

use pic_bench::{
    build_ensemble, measure_device_nsps, run_device_steps, run_mdipole_steps, BenchConfig,
    KernelVariant, MdipoleScenario,
};
use pic_particles::{Layout, ParticleAccess, SoaEnsemble};
use pic_perfmodel::report::PAPER_TABLE3;
use pic_perfmodel::Scenario;
use pic_runtime::{ExecTarget, Schedule, Topology};

/// Paper Table 3 cell (NSPS, float) for one scenario × layout × device
/// column (1 = P630, 2 = Iris Xe Max).
fn paper_cell(scenario: Scenario, layout: Layout, col: usize) -> f64 {
    PAPER_TABLE3
        .iter()
        .find(|(s, l, _)| *s == scenario && *l == layout)
        .map_or(f64::NAN, |(_, _, v)| v[col])
}

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Table 3 through the device backend ({} particles, {} launches per cell):",
        cfg.particles, cfg.iterations
    );
    println!();
    println!(
        "{:<22} {:<8} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "Scenario", "Pattern", "host", "warmup", "P630", "(paper)", "Iris", "(paper)"
    );

    for scenario in Scenario::all() {
        for layout in [Layout::Aos, Layout::Soa] {
            // Real host measurement of the same kernel, for scale.
            let host = pic_bench::measure_nsps_variant::<f32>(
                layout,
                scenario,
                &cfg,
                &Topology::single(1),
                Schedule::StaticChunks,
                KernelVariant::SoaFast,
            );
            let p630 = measure_device_nsps::<f32>(layout, scenario, &cfg, ExecTarget::P630);
            let iris = measure_device_nsps::<f32>(layout, scenario, &cfg, ExecTarget::IrisXeMax);
            println!(
                "{:<22} {:<8} {:>7.2} {:>7.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                scenario.name(),
                layout.name(),
                host.steady_nsps(),
                p630.warmup_nsps(),
                p630.steady_nsps(),
                paper_cell(scenario, layout, 1),
                iris.steady_nsps(),
                paper_cell(scenario, layout, 2),
            );
        }
        // The coalescing gap is the shape Table 3 demonstrates: AoS
        // (uncoalesced device loads) is the larger NSPS on both GPUs.
        let gap = |t| {
            let aos = measure_device_nsps::<f32>(Layout::Aos, scenario, &cfg, t);
            let soa = measure_device_nsps::<f32>(Layout::Soa, scenario, &cfg, t);
            aos.steady_nsps() / soa.steady_nsps()
        };
        println!(
            "{:<22} AoS/SoA coalescing gap: P630 {:.2}x, Iris {:.2}x",
            "", // aligned under the scenario column
            gap(ExecTarget::P630),
            gap(ExecTarget::IrisXeMax),
        );
    }

    // Physics parity: the offloaded run is bitwise the host fast path.
    println!();
    let n = 10_000;
    let steps = 5;
    let mut host_store: SoaEnsemble<f32> = build_ensemble(n, 7);
    let ctx = MdipoleScenario::prepare(Scenario::Analytical, &host_store);
    let mut t_host = 0.0f32;
    run_mdipole_steps(
        &mut host_store,
        &ctx,
        steps,
        &mut t_host,
        &Topology::single(1),
        Schedule::StaticChunks,
        KernelVariant::SoaFast,
        None,
        &mut |_, _| true,
    );
    for target in [ExecTarget::P630, ExecTarget::IrisXeMax] {
        let mut dev_store: SoaEnsemble<f32> = build_ensemble(n, 7);
        let dev_ctx = MdipoleScenario::prepare(Scenario::Analytical, &dev_store);
        let mut t_dev = 0.0f32;
        run_device_steps(
            &mut dev_store,
            &dev_ctx,
            steps,
            &mut t_dev,
            Layout::Soa,
            target,
            None,
            &mut |_, _| true,
        );
        let identical = (0..n).all(|i| host_store.get(i) == dev_store.get(i));
        println!("{target:?}: results bitwise identical to host: {identical}");
        assert!(identical);
    }
    println!();
    println!(
        "every device ran the same kernel on the same data — the first launch pays the \
         ~1.5x JIT penalty (warmup column), and the AoS/SoA gap reproduces the paper's \
         coalescing story."
    );
}

//! Facade crate of the Boris-pusher oneAPI reproduction.
//!
//! This package exists to host the repository's runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`). The
//! library surface simply re-exports the workspace crates:
//!
//! * [`pic_math`] — `FP`/`FP3` analogues, constants, special functions.
//! * [`pic_particles`] — AoS/SoA ensembles and the proxy abstraction.
//! * [`pic_fields`] — analytical, grid and precalculated field sources.
//! * [`pic_boris`] — the Boris/Vay/Higuera–Cary pushers and kernels.
//! * [`pic_runtime`] — static/dynamic/NUMA-domain parallel sweeps.
//! * [`pic_perfmodel`] — performance models of the paper's platforms.
//! * [`pic_device`] — the SYCL-like device/queue/USM layer.
//! * [`pic_sim`] — the full PIC substrate.
//! * [`pic_bench`] — the NSPS benchmark harness.

#![forbid(unsafe_code)]
pub use pic_bench;
pub use pic_boris;
pub use pic_device;
pub use pic_fields;
pub use pic_math;
pub use pic_particles;
pub use pic_perfmodel;
pub use pic_runtime;
pub use pic_sim;

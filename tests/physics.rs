//! Integration: physical behaviour of the full stack — the m-dipole
//! benchmark dynamics (paper §5.2) and the PIC substrate.

use pic_bench::{bench_dt, build_ensemble, dipole_wave};
use pic_boris::diag::{fraction_inside_sphere, mean_gamma};
use pic_boris::{AnalyticalSource, BorisPusher, PushKernel};
use pic_math::constants::{BENCH_OMEGA, BENCH_WAVELENGTH, ELECTRON_MASS, LIGHT_VELOCITY};
use pic_math::Vec3;
use pic_particles::{AosEnsemble, ParticleAccess, SpeciesTable};

#[test]
fn electrons_escape_the_focal_region() {
    // Paper §5.2: "due to strong field inhomogeneity, particles can
    // rapidly escape the focal region" at sub-threshold powers. Drive the
    // benchmark ensemble for several wave periods and watch the inside
    // fraction drop substantially.
    let table = SpeciesTable::<f64>::with_standard_species();
    let wave = dipole_wave::<f64>();
    let mut ens: AosEnsemble<f64> = build_ensemble(2_000, 2021);
    let radius = 0.6 * BENCH_WAVELENGTH;

    assert_eq!(fraction_inside_sphere(&ens, Vec3::zero(), radius), 1.0);

    let period = 2.0 * std::f64::consts::PI / BENCH_OMEGA;
    let steps_per_period = 200;
    let dt = period / steps_per_period as f64;
    let mut kernel = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);

    let mut fractions = vec![1.0];
    for _ in 0..6 {
        for _ in 0..steps_per_period {
            ens.for_each_mut(&mut kernel);
            kernel.advance_time();
        }
        fractions.push(fraction_inside_sphere(&ens, Vec3::zero(), radius));
    }

    // Substantial escape within a few periods…
    let last = *fractions.last().unwrap();
    assert!(last < 0.7, "inside fraction after 6 periods: {last}");
    // …and the trend is broadly downward.
    assert!(fractions[6] < fractions[1]);
    // The survivors are relativistic: 0.1 PW fields have a₀ ≫ 1.
    assert!(mean_gamma(&ens) > 1.5, "mean γ = {}", mean_gamma(&ens));
}

#[test]
fn particles_never_exceed_light_speed() {
    let table = SpeciesTable::<f64>::with_standard_species();
    let wave = dipole_wave::<f64>();
    let mut ens: AosEnsemble<f64> = build_ensemble(500, 7);
    let dt = bench_dt();
    let mut kernel = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
    for _ in 0..500 {
        ens.for_each_mut(&mut kernel);
        kernel.advance_time();
    }
    let e = table.get(SpeciesTable::<f64>::ELECTRON);
    for i in 0..ens.len() {
        let p = ens.get(i);
        let beta = p.velocity(e).norm() / LIGHT_VELOCITY;
        assert!(beta < 1.0, "particle {i}: β = {beta}");
        // γ cache consistent with momentum.
        let expect = pic_particles::particle::lorentz_gamma(p.momentum, ELECTRON_MASS);
        assert!((p.gamma - expect).abs() / expect < 1e-12);
    }
}

#[test]
fn single_and_double_precision_agree_statistically() {
    // Paper §3: "we did not observe any inaccuracies caused by the use of
    // single precision" in these benchmarks. Individual chaotic
    // trajectories diverge, but ensemble statistics must agree.
    let period = 2.0 * std::f64::consts::PI / BENCH_OMEGA;
    let steps = 400;
    let dt64 = period / 200.0;

    let run64 = {
        let table = SpeciesTable::<f64>::with_standard_species();
        let wave = dipole_wave::<f64>();
        let mut ens: AosEnsemble<f64> = build_ensemble(3_000, 1);
        let mut kernel = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt64);
        for _ in 0..steps {
            ens.for_each_mut(&mut kernel);
            kernel.advance_time();
        }
        (
            mean_gamma(&ens),
            fraction_inside_sphere(&ens, Vec3::zero(), 0.6 * BENCH_WAVELENGTH),
        )
    };
    let run32 = {
        let table = SpeciesTable::<f32>::with_standard_species();
        let wave = dipole_wave::<f32>();
        let mut ens: AosEnsemble<f32> = build_ensemble(3_000, 1);
        let mut kernel = PushKernel::new(
            AnalyticalSource::new(&wave),
            BorisPusher,
            &table,
            dt64 as f32,
        );
        for _ in 0..steps {
            ens.for_each_mut(&mut kernel);
            kernel.advance_time();
        }
        (
            mean_gamma(&ens),
            fraction_inside_sphere(&ens, Vec3::zero(), 0.6 * BENCH_WAVELENGTH),
        )
    };
    let gamma_rel = (run64.0 - run32.0).abs() / run64.0;
    assert!(gamma_rel < 0.05, "mean γ: {} vs {}", run64.0, run32.0);
    assert!(
        (run64.1 - run32.1).abs() < 0.08,
        "inside fraction: {} vs {}",
        run64.1,
        run32.1
    );
}

#[test]
fn full_pic_loop_remains_neutral_and_stable() {
    use pic_particles::{Particle, ParticleStore, SoaEnsemble};
    use pic_sim::sim::CurrentScheme;
    use pic_sim::{PicParams, PicSimulation};

    // A small thermal-free plasma slab; run and check nothing blows up
    // and Gauss's law holds.
    let dims = [8usize, 8, 8];
    let mut electrons = SoaEnsemble::<f64>::new();
    for k in 0..8 {
        for j in 0..8 {
            for i in 0..8 {
                electrons.push(Particle::new(
                    Vec3::new(i as f64 + 0.3, j as f64 + 0.6, k as f64 + 0.5),
                    Vec3::new(1e-3 * ELECTRON_MASS * LIGHT_VELOCITY, 0.0, 0.0),
                    1.0e9,
                    SpeciesTable::<f64>::ELECTRON,
                    ELECTRON_MASS,
                ));
            }
        }
    }
    let params = PicParams {
        dims,
        min: Vec3::zero(),
        spacing: Vec3::splat(1.0),
        dt: 1e-11,
        scheme: CurrentScheme::Esirkepov,
        boundary: pic_sim::ParticleBoundary::Periodic,
        solver: pic_sim::FieldSolverKind::Fdtd,
        interp: pic_fields::InterpOrder::Cic,
    };
    let mut sim = PicSimulation::new(params, electrons, SpeciesTable::with_standard_species());
    sim.run(200);
    let resid = pic_sim::diag::gauss_residual(sim.grid(), sim.particles(), sim.table());
    assert!(resid < 1e-6, "Gauss residual {resid}");
    for i in 0..sim.particles().len() {
        assert!(sim.particles().get(i).position.is_finite());
    }
}

#[test]
fn pulsed_wave_heats_particles_only_during_passage() {
    use pic_fields::DipolePulse;
    use pic_math::constants::BENCH_POWER;

    // A 5 fs pulse focused at the origin at t = 50 fs (shift the clock by
    // starting the kernel at a negative time).
    let table = SpeciesTable::<f64>::with_standard_species();
    let pulse = DipolePulse::<f64>::new(BENCH_POWER, BENCH_OMEGA, 5.0e-15, 17);
    let mut ens: AosEnsemble<f64> = build_ensemble(150, 13);
    let dt = 2.0 * std::f64::consts::PI / BENCH_OMEGA / 100.0;
    let mut kernel = PushKernel::new(AnalyticalSource::new(&pulse), BorisPusher, &table, dt);
    kernel.set_time(-50.0e-15); // pulse peak is 50 fs in the future

    // Phase 1: long before the pulse — nothing happens.
    let steps_to = |t_end: f64, kernel: &mut _, ens: &mut AosEnsemble<f64>| {
        let k: &mut PushKernel<_, _, _> = kernel;
        while k.time() < t_end {
            ens.for_each_mut(k);
            k.advance_time();
        }
    };
    steps_to(-25.0e-15, &mut kernel, &mut ens);
    let gamma_before = mean_gamma(&ens);
    // A finite spectral sum leaves a tiny pedestal (~1e-6 of the peak
    // amplitude), so "at rest" means γ−1 at the 1e-3 level here.
    assert!(
        gamma_before < 1.01,
        "particles moved before the pulse arrived: γ = {gamma_before}"
    );

    // Phase 2: through the pulse.
    steps_to(25.0e-15, &mut kernel, &mut ens);
    let gamma_after = mean_gamma(&ens);
    assert!(
        gamma_after > 1.5,
        "pulse did not heat the ensemble: γ = {gamma_after}"
    );

    // Phase 3: long after — free streaming, γ essentially frozen.
    steps_to(60.0e-15, &mut kernel, &mut ens);
    let gamma_late = mean_gamma(&ens);
    assert!(
        (gamma_late - gamma_after).abs() / gamma_after < 0.25,
        "γ kept changing after the pulse left: {gamma_after} → {gamma_late}"
    );
}

//! Cross-crate integration: ensembles × field sources × pushers × runtime
//! schedules, exercised together through the public API.

use pic_bench::{bench_dt, build_ensemble, dipole_wave, BenchConfig};
use pic_boris::{AnalyticalSource, BorisPusher, SharedPushKernel};
use pic_fields::PrecalculatedFields;
use pic_particles::{AosEnsemble, Layout, ParticleAccess, SoaEnsemble, SpeciesTable};
use pic_perfmodel::Scenario;
use pic_runtime::{parallel_sweep, Schedule, Topology};

fn run_steps<S: ParticleAccess<f64>>(
    store: &mut S,
    topology: &Topology,
    schedule: Schedule,
    steps: usize,
) {
    let table = SpeciesTable::<f64>::with_standard_species();
    let wave = dipole_wave::<f64>();
    let source = AnalyticalSource::new(&wave);
    let dt = bench_dt();
    let mut time = 0.0;
    for _ in 0..steps {
        let shared = SharedPushKernel {
            source: &source,
            pusher: BorisPusher,
            table: &table,
            dt,
            time,
        };
        parallel_sweep(store, topology, schedule, |_| shared.to_kernel());
        time += dt;
    }
}

#[test]
fn every_schedule_produces_the_serial_result() {
    let serial = {
        let mut ens: SoaEnsemble<f64> = build_ensemble(2_000, 10);
        run_steps(&mut ens, &Topology::single(1), Schedule::StaticChunks, 20);
        ens
    };
    for schedule in [
        Schedule::StaticChunks,
        Schedule::dynamic(),
        Schedule::numa(),
    ] {
        for topo in [Topology::single(3), Topology::uniform(2, 2)] {
            let mut ens: SoaEnsemble<f64> = build_ensemble(2_000, 10);
            run_steps(&mut ens, &topo, schedule, 20);
            for i in 0..ens.len() {
                assert_eq!(
                    ens.get(i),
                    serial.get(i),
                    "particle {i} diverged under {schedule:?} / {topo:?}"
                );
            }
        }
    }
}

#[test]
fn layouts_agree_under_parallel_execution() {
    let mut aos: AosEnsemble<f64> = build_ensemble(3_000, 99);
    let mut soa: SoaEnsemble<f64> = build_ensemble(3_000, 99);
    let topo = Topology::uniform(2, 2);
    run_steps(&mut aos, &topo, Schedule::dynamic(), 15);
    run_steps(&mut soa, &topo, Schedule::numa(), 15);
    for i in 0..aos.len() {
        assert_eq!(aos.get(i), soa.get(i), "particle {i}");
    }
}

#[test]
fn precalculated_scenario_uses_global_indices_across_chunks() {
    // A precalculated array addressed by global particle index must
    // produce the same result however the ensemble is chunked.
    let table = SpeciesTable::<f64>::with_standard_species();
    let wave = dipole_wave::<f64>();
    let dt = bench_dt();

    let base: SoaEnsemble<f64> = build_ensemble(1_111, 4);
    let positions: Vec<_> = (0..base.len()).map(|i| base.get(i).position).collect();
    let pre = PrecalculatedFields::from_sampler(&wave, positions, 0.0);

    let run = |topology: &Topology, schedule: Schedule| -> SoaEnsemble<f64> {
        let mut ens: SoaEnsemble<f64> = build_ensemble(1_111, 4);
        let source = pic_boris::PrecalculatedSource::new(&pre);
        let shared = SharedPushKernel {
            source: &source,
            pusher: BorisPusher,
            table: &table,
            dt,
            time: 0.0,
        };
        parallel_sweep(&mut ens, topology, schedule, |_| shared.to_kernel());
        ens
    };

    let serial = run(&Topology::single(1), Schedule::StaticChunks);
    let tiny_grains = run(&Topology::uniform(2, 2), Schedule::Dynamic { grain: 7 });
    let numa = run(
        &Topology::uniform(2, 3),
        Schedule::NumaDomains { grain: 13 },
    );
    for i in 0..serial.len() {
        assert_eq!(serial.get(i), tiny_grains.get(i), "dynamic particle {i}");
        assert_eq!(serial.get(i), numa.get(i), "numa particle {i}");
    }
}

#[test]
fn energy_grows_from_rest_in_the_wave() {
    // Physics smoke test across the full pipeline: the wave accelerates
    // the initially resting ensemble.
    let mut ens: AosEnsemble<f64> = build_ensemble(500, 3);
    run_steps(&mut ens, &Topology::default(), Schedule::dynamic(), 100);
    let table = SpeciesTable::<f64>::with_standard_species();
    let energy = pic_boris::diag::kinetic_energy(&ens, &table);
    assert!(energy > 0.0);
    let mg = pic_boris::diag::mean_gamma(&ens);
    assert!(mg > 1.0, "mean γ = {mg}");
    // γ stays finite and consistent.
    for i in 0..ens.len() {
        let p = ens.get(i);
        assert!(p.gamma.is_finite());
        assert!(p.position.is_finite());
    }
}

#[test]
fn bench_harness_matches_direct_execution_cost_metricwise() {
    // The harness must do exactly particles × steps pushes per iteration.
    let cfg = BenchConfig::quick();
    let run = pic_bench::measure_nsps::<f32>(
        Layout::Soa,
        Scenario::Analytical,
        &cfg,
        &Topology::single(1),
        Schedule::StaticChunks,
    );
    assert_eq!(run.work, cfg.particles * cfg.steps_per_iteration);
    assert_eq!(run.iteration_ns.len(), cfg.iterations);
}

#[test]
fn sorted_ensemble_produces_same_physics() {
    use pic_math::Vec3;
    use pic_particles::sort::{sort_by_morton, CellGrid};

    let lambda = pic_math::constants::BENCH_WAVELENGTH;
    let grid = CellGrid::new(Vec3::splat(-lambda), Vec3::splat(lambda), [16, 16, 16]);
    let mut sorted: AosEnsemble<f64> = build_ensemble(2_000, 5);
    sort_by_morton(&mut sorted, &grid);
    let mut unsorted: AosEnsemble<f64> = build_ensemble(2_000, 5);

    run_steps(&mut sorted, &Topology::single(2), Schedule::dynamic(), 10);
    run_steps(&mut unsorted, &Topology::single(2), Schedule::dynamic(), 10);

    // Same multiset of particles (order differs).
    let table = SpeciesTable::<f64>::with_standard_species();
    let e_sorted = pic_boris::diag::kinetic_energy(&sorted, &table);
    let e_unsorted = pic_boris::diag::kinetic_energy(&unsorted, &table);
    assert!((e_sorted - e_unsorted).abs() / e_unsorted < 1e-12);
}

//! Integration tests of the observability layer: sweep accounting under
//! every schedule, BenchRecord persistence, and the regression gate.

use pic_bench::{bench_record, measure_nsps, BenchConfig, KernelVariant};
use pic_particles::{AosEnsemble, DynKernel, Layout, ParticleStore, ParticleView};
use pic_perfmodel::{Precision, Scenario};
use pic_runtime::{parallel_sweep, Schedule, Topology};
use pic_telemetry::{compare, read_records, write_records, BenchRecord, Registry, SCHEMA_VERSION};
use std::path::PathBuf;

fn every_schedule() -> [Schedule; 4] {
    [
        Schedule::StaticChunks,
        Schedule::dynamic(),
        Schedule::guided(),
        Schedule::numa(),
    ]
}

fn tagged_ensemble(n: usize) -> AosEnsemble<f64> {
    AosEnsemble::from_particles((0..n).map(|_| pic_particles::Particle::default()))
}

#[test]
fn sweep_totals_equal_ensemble_size_under_every_schedule() {
    // 1009 is prime, so no grain size divides it — every schedule has a
    // ragged tail chunk to account for.
    let n = 1009;
    for topo in [
        Topology::single(1),
        Topology::single(4),
        Topology::uniform(2, 3),
    ] {
        for schedule in every_schedule() {
            let mut ens = tagged_ensemble(n);
            let report = parallel_sweep(&mut ens, &topo, schedule, |_tid| {
                DynKernel(|_i, v: &mut dyn ParticleView<f64>| {
                    let w = v.weight();
                    v.set_weight(w + 1.0);
                })
            });
            assert_eq!(
                report.total_particles(),
                n,
                "{schedule:?} on {} threads",
                topo.total_threads()
            );
            assert!(report.total_chunks() >= 1);
            // Multi-thread runs report the busiest/mean ratio (>= 1.0);
            // single-thread runs have no imbalance and report 0.0.
            if report.threads.len() > 1 {
                assert!(report.imbalance() >= 1.0);
            } else {
                assert_eq!(report.imbalance(), 0.0);
            }
            // Each report row carries a valid domain.
            for t in &report.threads {
                assert!(t.domain < topo.domains());
            }
        }
    }
}

#[test]
fn sweep_busy_time_is_captured_and_drains_into_registry() {
    let n = 40_000;
    let topo = Topology::single(4);
    let registry = Registry::new(topo.total_threads());
    for _ in 0..3 {
        let mut ens = tagged_ensemble(n);
        let report = parallel_sweep(&mut ens, &topo, Schedule::dynamic(), |_tid| {
            DynKernel(|_i, v: &mut dyn ParticleView<f64>| {
                let w = v.weight();
                v.set_weight((w + 1.5).sqrt());
            })
        });
        report.record_into(&registry);
    }
    let grand = registry.grand_totals();
    assert_eq!(grand.particles, 3 * n as u64);
    assert!(
        grand.busy_ns > 0,
        "telemetry feature should time kernel work"
    );
}

#[test]
fn measured_run_accounts_for_every_particle_step() {
    let cfg = BenchConfig {
        particles: 3_000,
        steps_per_iteration: 4,
        iterations: 2,
    };
    let topo = Topology::uniform(2, 2);
    for schedule in every_schedule() {
        let run = measure_nsps::<f32>(Layout::Soa, Scenario::Precalculated, &cfg, &topo, schedule);
        let total: u64 = run.thread_stats.iter().map(|t| t.particles).sum();
        let expect = (cfg.particles * cfg.steps_per_iteration * cfg.iterations) as u64;
        assert_eq!(total, expect, "{schedule:?}");
        assert_eq!(run.iteration_ns.len(), cfg.iterations);
        assert_eq!(run.nsps_series().len(), cfg.iterations);
        assert!(run.imbalance() >= 1.0);
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("boris_oneapi_telemetry_it");
    #[allow(clippy::unwrap_used)] // test helper; tmpdir creation is infallible in CI
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn bench_record_round_trips_through_a_file() {
    let cfg = BenchConfig::quick();
    let topo = Topology::single(2);
    let schedule = Schedule::StaticChunks;
    let run = measure_nsps::<f32>(Layout::Aos, Scenario::Analytical, &cfg, &topo, schedule);
    let rec = bench_record(
        "roundtrip",
        Layout::Aos,
        Scenario::Analytical,
        Precision::F32,
        schedule,
        KernelVariant::SoaFast,
        &topo,
        &cfg,
        &run,
    );
    assert_eq!(rec.schema, SCHEMA_VERSION);
    let path = temp_path("BENCH_roundtrip.json");
    write_records(&path, std::slice::from_ref(&rec)).unwrap();
    let back = read_records(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(back, vec![rec]);
}

#[test]
fn regression_gate_flags_a_2x_slowdown_and_passes_identical_records() {
    let cfg = BenchConfig::quick();
    let topo = Topology::single(1);
    let schedule = Schedule::StaticChunks;
    let run = measure_nsps::<f32>(Layout::Soa, Scenario::Precalculated, &cfg, &topo, schedule);
    let baseline = bench_record(
        "base",
        Layout::Soa,
        Scenario::Precalculated,
        Precision::F32,
        schedule,
        KernelVariant::SoaFast,
        &topo,
        &cfg,
        &run,
    );

    // Identical records pass at the default 10% threshold.
    let same = compare(
        std::slice::from_ref(&baseline),
        std::slice::from_ref(&baseline),
        0.10,
    );
    assert!(same.passed());
    assert_eq!(same.comparisons.len(), 1);

    // An injected 2x slowdown fails, matched by configuration key.
    let mut slowed = baseline.clone();
    slowed.label = "slow".into();
    slowed.steady_nsps *= 2.0;
    slowed.iteration_ns = baseline.iteration_ns.iter().map(|ns| ns * 2.0).collect();
    let report = compare(std::slice::from_ref(&baseline), &[slowed], 0.10);
    assert!(!report.passed());
    assert_eq!(report.regressions().len(), 1);
    assert!((report.regressions()[0].delta - 1.0).abs() < 1e-12);

    // The gate reads its inputs from disk in production: exercise the
    // file path end to end as the `regress` binary does.
    let base_path = temp_path("BENCH_gate_base.json");
    write_records(&base_path, std::slice::from_ref(&baseline)).unwrap();
    let loaded = read_records(&base_path).unwrap();
    std::fs::remove_file(&base_path).unwrap();
    assert!(compare(&loaded, &[baseline], 0.10).passed());
}

#[test]
fn unknown_schema_versions_are_rejected_not_misread() {
    let line = format!(r#"{{"schema": {}}}"#, SCHEMA_VERSION + 1);
    let err = BenchRecord::from_json(&line).unwrap_err();
    assert!(err.to_string().contains("schema version"), "{err}");
}

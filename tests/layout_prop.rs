//! Property-based integration tests: the layout abstraction and the
//! pushers under randomized inputs.

use pic_boris::{AnalyticalSource, BorisPusher, HigueraCaryPusher, PushKernel, Pusher, VayPusher};
use pic_fields::UniformFields;
use pic_math::constants::{ELECTRON_MASS, LIGHT_VELOCITY};
use pic_math::Vec3;
use pic_particles::{
    AosEnsemble, Particle, ParticleAccess, ParticleStore, SoaEnsemble, Species, SpeciesId,
    SpeciesTable,
};
use proptest::prelude::*;

fn arb_vec3(scale: f64) -> impl Strategy<Value = Vec3<f64>> {
    (
        -scale..scale,
        -scale..scale,
        -scale..scale,
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_particle() -> impl Strategy<Value = Particle<f64>> {
    let mc = ELECTRON_MASS * LIGHT_VELOCITY;
    (arb_vec3(1e-3), arb_vec3(5.0), 0.1f64..10.0).prop_map(move |(pos, u, w)| {
        Particle::new(pos, u * mc, w, SpeciesId(0), ELECTRON_MASS)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aos_and_soa_stay_bitwise_identical(
        particles in prop::collection::vec(arb_particle(), 1..40),
        e in arb_vec3(1e3),
        b in arb_vec3(1e5),
        steps in 1usize..10,
    ) {
        let table = SpeciesTable::<f64>::with_standard_species();
        let field = UniformFields::new(e, b);
        let mut aos: AosEnsemble<f64> = particles.iter().copied().collect();
        let mut soa: SoaEnsemble<f64> = particles.iter().copied().collect();
        let dt = 1e-13;
        let mut ka = PushKernel::new(AnalyticalSource::new(field), BorisPusher, &table, dt);
        let mut ks = PushKernel::new(AnalyticalSource::new(field), BorisPusher, &table, dt);
        for _ in 0..steps {
            aos.for_each_mut(&mut ka);
            ka.advance_time();
            soa.for_each_mut(&mut ks);
            ks.advance_time();
        }
        for i in 0..aos.len() {
            prop_assert_eq!(aos.get(i), soa.get(i));
        }
    }

    #[test]
    fn split_and_merge_preserve_state(
        particles in prop::collection::vec(arb_particle(), 1..60),
        chunk in 1usize..20,
    ) {
        let mut ens: SoaEnsemble<f64> = particles.iter().copied().collect();
        let before = ens.to_particles();
        // Splitting alone must not disturb anything.
        let total: usize = ens.split_mut(chunk).iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, before.len());
        prop_assert_eq!(ens.to_particles(), before);
    }

    #[test]
    fn all_pushers_preserve_gamma_floor(
        p in arb_particle(),
        e in arb_vec3(1e3),
        b in arb_vec3(1e5),
    ) {
        let sp = Species::<f64>::electron();
        let field = pic_fields::EB::new(e, b);
        for (name, result) in [
            ("boris", { let mut q = p; BorisPusher.push(&mut q, &field, &sp, 1e-13); q }),
            ("vay", { let mut q = p; VayPusher.push(&mut q, &field, &sp, 1e-13); q }),
            ("hc", { let mut q = p; HigueraCaryPusher.push(&mut q, &field, &sp, 1e-13); q }),
        ] {
            prop_assert!(result.gamma >= 1.0, "{name}: γ = {}", result.gamma);
            prop_assert!(result.momentum.is_finite(), "{name}");
            prop_assert!(result.position.is_finite(), "{name}");
            // γ cache invariant.
            let expect = pic_particles::particle::lorentz_gamma(result.momentum, sp.mass);
            prop_assert!((result.gamma - expect).abs() / expect < 1e-12, "{name}");
        }
    }

    #[test]
    fn pushers_agree_to_second_order(
        p in arb_particle(),
        e in arb_vec3(1e2),
        b in arb_vec3(1e4),
    ) {
        // For a small step, Boris, Vay and HC differ at O(dt³) — their
        // pairwise distance must be far below the step displacement.
        let sp = Species::<f64>::electron();
        let field = pic_fields::EB::new(e, b);
        let dt = 1e-16;
        let mut pb = p;
        let mut pv = p;
        let mut ph = p;
        BorisPusher.push(&mut pb, &field, &sp, dt);
        VayPusher.push(&mut pv, &field, &sp, dt);
        HigueraCaryPusher.push(&mut ph, &field, &sp, dt);
        let step = (pb.momentum - p.momentum).norm();
        if step > 0.0 {
            prop_assert!((pb.momentum - pv.momentum).norm() < 1e-4 * step);
            prop_assert!((pb.momentum - ph.momentum).norm() < 1e-4 * step);
        }
    }
}

//! Property-based integration tests: the layout abstraction and the
//! pushers under randomized inputs.

use pic_boris::{
    AnalyticalSource, BorisPusher, HigueraCaryPusher, PushKernel, Pusher, SharedPushKernel,
    VayPusher,
};
use pic_fields::UniformFields;
use pic_math::constants::{ELECTRON_MASS, LIGHT_VELOCITY};
use pic_math::Vec3;
use pic_particles::{
    AosEnsemble, Particle, ParticleAccess, ParticleStore, SoaEnsemble, Species, SpeciesId,
    SpeciesTable,
};
use pic_runtime::{parallel_sweep, Schedule, Topology};
use proptest::prelude::*;

fn arb_vec3(scale: f64) -> impl Strategy<Value = Vec3<f64>> {
    (-scale..scale, -scale..scale, -scale..scale).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_particle() -> impl Strategy<Value = Particle<f64>> {
    let mc = ELECTRON_MASS * LIGHT_VELOCITY;
    (arb_vec3(1e-3), arb_vec3(5.0), 0.1f64..10.0)
        .prop_map(move |(pos, u, w)| Particle::new(pos, u * mc, w, SpeciesId(0), ELECTRON_MASS))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aos_and_soa_stay_bitwise_identical(
        particles in prop::collection::vec(arb_particle(), 1..40),
        e in arb_vec3(1e3),
        b in arb_vec3(1e5),
        steps in 1usize..10,
    ) {
        let table = SpeciesTable::<f64>::with_standard_species();
        let field = UniformFields::new(e, b);
        let mut aos: AosEnsemble<f64> = particles.iter().copied().collect();
        let mut soa: SoaEnsemble<f64> = particles.iter().copied().collect();
        let dt = 1e-13;
        let mut ka = PushKernel::new(AnalyticalSource::new(field), BorisPusher, &table, dt);
        let mut ks = PushKernel::new(AnalyticalSource::new(field), BorisPusher, &table, dt);
        for _ in 0..steps {
            aos.for_each_mut(&mut ka);
            ka.advance_time();
            soa.for_each_mut(&mut ks);
            ks.advance_time();
        }
        for i in 0..aos.len() {
            prop_assert_eq!(aos.get(i), soa.get(i));
        }
    }

    #[test]
    fn split_and_merge_preserve_state(
        particles in prop::collection::vec(arb_particle(), 1..60),
        chunk in 1usize..20,
    ) {
        let mut ens: SoaEnsemble<f64> = particles.iter().copied().collect();
        let before = ens.to_particles();
        // Splitting alone must not disturb anything.
        let total: usize = ens.split_mut(chunk).iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, before.len());
        prop_assert_eq!(ens.to_particles(), before);
    }

    #[test]
    fn all_pushers_preserve_gamma_floor(
        p in arb_particle(),
        e in arb_vec3(1e3),
        b in arb_vec3(1e5),
    ) {
        let sp = Species::<f64>::electron();
        let field = pic_fields::EB::new(e, b);
        for (name, result) in [
            ("boris", { let mut q = p; BorisPusher.push(&mut q, &field, &sp, 1e-13); q }),
            ("vay", { let mut q = p; VayPusher.push(&mut q, &field, &sp, 1e-13); q }),
            ("hc", { let mut q = p; HigueraCaryPusher.push(&mut q, &field, &sp, 1e-13); q }),
        ] {
            prop_assert!(result.gamma >= 1.0, "{name}: γ = {}", result.gamma);
            prop_assert!(result.momentum.is_finite(), "{name}");
            prop_assert!(result.position.is_finite(), "{name}");
            // γ cache invariant.
            let expect = pic_particles::particle::lorentz_gamma(result.momentum, sp.mass);
            prop_assert!((result.gamma - expect).abs() / expect < 1e-12, "{name}");
        }
    }

    #[test]
    fn pushers_agree_to_second_order(
        p in arb_particle(),
        e in arb_vec3(1e2),
        b in arb_vec3(1e4),
    ) {
        // For a small step, Boris, Vay and HC differ at O(dt³) — their
        // pairwise distance must be far below the step displacement.
        let sp = Species::<f64>::electron();
        let field = pic_fields::EB::new(e, b);
        let dt = 1e-16;
        let mut pb = p;
        let mut pv = p;
        let mut ph = p;
        BorisPusher.push(&mut pb, &field, &sp, dt);
        VayPusher.push(&mut pv, &field, &sp, dt);
        HigueraCaryPusher.push(&mut ph, &field, &sp, dt);
        let step = (pb.momentum - p.momentum).norm();
        if step > 0.0 {
            prop_assert!((pb.momentum - pv.momentum).norm() < 1e-4 * step);
            prop_assert!((pb.momentum - ph.momentum).norm() < 1e-4 * step);
        }
    }

    #[test]
    fn pusher_disagreement_vanishes_at_second_order_in_weak_fields(
        p in arb_particle(),
        e in arb_vec3(1e1),
        b in arb_vec3(1e3),
    ) {
        // The three schemes share the O(dt²)-accurate solution and differ
        // only in the magnetic substep, so their one-step disagreement is
        // O(dt³): halving dt in the weak-field limit must shrink it ~8×.
        // Tolerating down to 4× absorbs the subdominant terms.
        let sp = Species::<f64>::electron();
        let field = pic_fields::EB::new(e, b);
        let disagreement = |dt: f64| -> f64 {
            let mut pb = p;
            let mut pv = p;
            let mut ph = p;
            BorisPusher.push(&mut pb, &field, &sp, dt);
            VayPusher.push(&mut pv, &field, &sp, dt);
            HigueraCaryPusher.push(&mut ph, &field, &sp, dt);
            (pb.momentum - pv.momentum)
                .norm()
                .max((pb.momentum - ph.momentum).norm())
                .max((pv.momentum - ph.momentum).norm())
        };
        let coarse = disagreement(2e-13);
        let fine = disagreement(1e-13);
        // Only judge the ratio when the coarse disagreement is far enough
        // above rounding for the cubic term to dominate.
        let floor = 1e5 * f64::EPSILON * p.momentum.norm().max(ELECTRON_MASS * LIGHT_VELOCITY);
        if coarse > floor {
            prop_assert!(
                fine < coarse / 4.0,
                "disagreement fell {}x, want >= 4x (coarse {coarse:.3e}, fine {fine:.3e})",
                coarse / fine
            );
        }
    }

    #[test]
    fn layouts_stay_bitwise_identical_under_parallel_sweep(
        particles in prop::collection::vec(arb_particle(), 1..80),
        e in arb_vec3(1e3),
        b in arb_vec3(1e5),
        pusher_idx in 0usize..3,
        schedule_idx in 0usize..4,
        steps in 1usize..6,
    ) {
        // The same kernel through the threaded sweep must treat AoS and
        // SoA identically bit for bit, for every pusher and schedule: the
        // sweep only partitions index ranges, and per-particle updates are
        // independent, so thread interleaving cannot change results.
        let table = SpeciesTable::<f64>::with_standard_species();
        let field = UniformFields::new(e, b);
        let schedule = [
            Schedule::StaticChunks,
            Schedule::dynamic(),
            Schedule::guided(),
            Schedule::numa(),
        ][schedule_idx];
        let topo = Topology::uniform(2, 2);
        let dt = 1e-13;

        #[allow(clippy::too_many_arguments)]
        fn trajectories<A: ParticleAccess<f64> + ParticleStore<f64>>(
            particles: &[Particle<f64>],
            field: UniformFields<f64>,
            table: &SpeciesTable<f64>,
            pusher_idx: usize,
            schedule: Schedule,
            topo: &Topology,
            dt: f64,
            steps: usize,
        ) -> Vec<Particle<f64>> {
            let mut ens = A::from_particles(particles.iter().copied());
            let mut time = 0.0;
            for _ in 0..steps {
                let source = AnalyticalSource::new(field);
                macro_rules! sweep {
                    ($pusher:expr) => {{
                        let shared = SharedPushKernel {
                            source: &source,
                            pusher: $pusher,
                            table,
                            dt,
                            time,
                        };
                        parallel_sweep(&mut ens, topo, schedule, |_tid| shared.to_kernel());
                    }};
                }
                match pusher_idx {
                    0 => sweep!(BorisPusher),
                    1 => sweep!(VayPusher),
                    _ => sweep!(HigueraCaryPusher),
                }
                time += dt;
            }
            ens.to_particles()
        }

        let aos = trajectories::<AosEnsemble<f64>>(
            &particles, field, &table, pusher_idx, schedule, &topo, dt, steps);
        let soa = trajectories::<SoaEnsemble<f64>>(
            &particles, field, &table, pusher_idx, schedule, &topo, dt, steps);
        for (i, (a, s)) in aos.iter().zip(&soa).enumerate() {
            prop_assert_eq!(a, s, "particle {} diverged between layouts", i);
        }
    }
}

//! Integration: the oneAPI-like device layer against the rest of the
//! stack — functional parity across devices and sane modeled timings.

use pic_bench::{bench_dt, build_ensemble, dipole_wave};
use pic_boris::{AnalyticalSource, BorisPusher, SharedPushKernel};
use pic_device::{Device, Event, Queue, SweepProfile};
use pic_particles::{Layout, ParticleAccess, SoaEnsemble, SpeciesTable};
use pic_perfmodel::{Precision, Scenario};
use pic_runtime::{Schedule, Topology};

fn run_on(device: Device, steps: usize) -> (SoaEnsemble<f32>, Vec<Event>) {
    let table = SpeciesTable::<f32>::with_standard_species();
    let wave = dipole_wave::<f32>();
    let source = AnalyticalSource::new(&wave);
    let dt = bench_dt() as f32;
    let profile = SweepProfile::new(Scenario::Analytical, Layout::Soa, Precision::F32);
    let mut queue = Queue::new(device);
    let mut ens: SoaEnsemble<f32> = build_ensemble(4_000, 31);
    let mut events = Vec::new();
    let mut time = 0.0f32;
    for _ in 0..steps {
        let shared = SharedPushKernel {
            source: &source,
            pusher: BorisPusher,
            table: &table,
            dt,
            time,
        };
        events.push(queue.submit_sweep(&mut ens, profile, |_| shared.to_kernel()));
        time += dt;
    }
    (ens, events)
}

#[test]
fn all_devices_compute_identical_trajectories() {
    let (host, _) = run_on(Device::host(Topology::uniform(2, 2), Schedule::numa()), 10);
    let (p630, _) = run_on(Device::p630(), 10);
    let (iris, _) = run_on(Device::iris_xe_max(), 10);
    for i in 0..host.len() {
        assert_eq!(host.get(i), p630.get(i), "P630 diverged at particle {i}");
        assert_eq!(host.get(i), iris.get(i), "Iris diverged at particle {i}");
    }
}

#[test]
fn modeled_timings_order_like_table3() {
    let (_, p630_events) = run_on(Device::p630(), 3);
    let (_, iris_events) = run_on(Device::iris_xe_max(), 3);
    // Steady-state events (skip the JIT launch).
    let p = p630_events[1].ns_per_particle();
    let i = iris_events[1].ns_per_particle();
    assert!(p > i, "P630 ({p}) should be slower than Iris ({i})");
    // And the first launch pays the warm-up on both devices.
    assert!(p630_events[0].ns_per_particle() > p);
    assert!(iris_events[0].ns_per_particle() > i);
    assert!(p630_events[0].first_launch);
    assert!(!p630_events[1].first_launch);
}

#[test]
fn host_events_measure_wall_clock() {
    let (_, events) = run_on(Device::host_default(), 2);
    for e in &events {
        assert!(e.modeled_ns.is_none());
        assert!(e.wall.as_nanos() > 0);
        assert_eq!(e.particles, 4_000);
    }
}

#[test]
fn usm_buffers_track_migrations_across_a_kernel_cycle() {
    use pic_device::{AllocKind, UsmBuffer};
    // Model the paper's USM pattern: host fills, device computes, host
    // reads back — two migrations for a shared allocation.
    let mut buf = UsmBuffer::<f32>::new(AllocKind::Shared, 1024);
    for (i, v) in buf.host_mut().iter_mut().enumerate() {
        *v = i as f32;
    }
    let on_device: f32 = buf.device().iter().sum();
    assert!(on_device > 0.0);
    let back = buf.host()[1023];
    assert_eq!(back, 1023.0);
    assert_eq!(buf.migrations(), 2);
}

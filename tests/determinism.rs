//! Deterministic RNG seeding: two builds of the benchmark ensemble from
//! the same seed must be bitwise identical, across layouts and
//! precisions. All `rand` users in the workspace take an explicitly
//! seeded generator (the vendored `rand` stand-in deliberately provides
//! no `thread_rng`), so reproducibility is enforced at the API level;
//! these tests pin the observable behavior.

use pic_bench::build_ensemble;
use pic_particles::{AosEnsemble, ParticleAccess, SoaEnsemble};

#[test]
fn benchmark_ensemble_builds_are_bitwise_identical() {
    let n = 5_000;
    let a: AosEnsemble<f64> = build_ensemble(n, 42);
    let b: AosEnsemble<f64> = build_ensemble(n, 42);
    for i in 0..n {
        let (pa, pb) = (a.get(i), b.get(i));
        // Bitwise, not approximate: identical seeds must reproduce the
        // exact floating-point stream.
        assert_eq!(
            pa.position.x.to_bits(),
            pb.position.x.to_bits(),
            "particle {i}"
        );
        assert_eq!(
            pa.position.y.to_bits(),
            pb.position.y.to_bits(),
            "particle {i}"
        );
        assert_eq!(
            pa.position.z.to_bits(),
            pb.position.z.to_bits(),
            "particle {i}"
        );
        assert_eq!(pa, pb);
    }
}

#[test]
fn benchmark_ensemble_is_layout_and_rebuild_stable_f32() {
    let n = 2_000;
    let a1: SoaEnsemble<f32> = build_ensemble(n, 7);
    let a2: SoaEnsemble<f32> = build_ensemble(n, 7);
    let aos: AosEnsemble<f32> = build_ensemble(n, 7);
    for i in 0..n {
        assert_eq!(a1.get(i), a2.get(i), "rebuild differs at {i}");
        assert_eq!(a1.get(i), aos.get(i), "layout differs at {i}");
    }
}

#[test]
fn different_seeds_give_different_ensembles() {
    let a: AosEnsemble<f64> = build_ensemble(100, 1);
    let b: AosEnsemble<f64> = build_ensemble(100, 2);
    assert!((0..100).any(|i| a.get(i) != b.get(i)));
}

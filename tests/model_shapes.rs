//! Integration: the performance models reproduce the paper's headline
//! claims through the public API (the per-cell bands live in the
//! `pic-perfmodel` unit tests; here we pin the *conclusions* the paper
//! draws from Tables 2–3 and Fig. 1).

use pic_particles::Layout;
use pic_perfmodel::{CpuModel, GpuModel, Parallelization, Precision, Scenario};

#[test]
fn conclusion_dpcpp_is_about_ten_percent_behind_openmp() {
    // Abstract: "on CPUs the resulting DPC++ code is only ~10% on average
    // inferior to the optimized C++ code" (with NUMA pinning).
    let m = CpuModel::endeavour();
    let mut ratios = Vec::new();
    for scenario in Scenario::all() {
        for layout in [Layout::Aos, Layout::Soa] {
            for prec in [Precision::F32, Precision::F64] {
                let omp = m.table2_cell(scenario, layout, prec, Parallelization::OpenMp);
                let numa = m.table2_cell(scenario, layout, prec, Parallelization::DpcppNuma);
                ratios.push(numa / omp);
            }
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (1.0..1.15).contains(&mean),
        "mean DPC++ NUMA / OpenMP = {mean:.3}"
    );
}

#[test]
fn conclusion_numa_pinning_is_the_big_lever() {
    // Table 2: plain DPC++ loses ~1.5x across the board; pinning recovers
    // it.
    let m = CpuModel::endeavour();
    for scenario in Scenario::all() {
        let plain = m.table2_cell(
            scenario,
            Layout::Aos,
            Precision::F32,
            Parallelization::Dpcpp,
        );
        let numa = m.table2_cell(
            scenario,
            Layout::Aos,
            Precision::F32,
            Parallelization::DpcppNuma,
        );
        let gain = plain / numa;
        assert!(
            (1.3..1.8).contains(&gain),
            "{scenario}: NUMA gain {gain:.2}"
        );
    }
}

#[test]
fn conclusion_layout_is_minor_on_cpu_major_on_gpu() {
    let cpu = CpuModel::endeavour();
    let cpu_ratio = cpu.table2_cell(
        Scenario::Precalculated,
        Layout::Aos,
        Precision::F32,
        Parallelization::DpcppNuma,
    ) / cpu.table2_cell(
        Scenario::Precalculated,
        Layout::Soa,
        Precision::F32,
        Parallelization::DpcppNuma,
    );
    assert!(
        (0.7..1.5).contains(&cpu_ratio),
        "CPU AoS/SoA = {cpu_ratio:.2}"
    );

    for gpu in GpuModel::paper_devices() {
        let gpu_ratio = gpu.nsps_f32(Scenario::Precalculated, Layout::Aos)
            / gpu.nsps_f32(Scenario::Precalculated, Layout::Soa);
        assert!(
            gpu_ratio > 1.4,
            "{}: AoS/SoA = {gpu_ratio:.2} should be decisive",
            gpu.spec.name
        );
    }
}

#[test]
fn conclusion_gpus_track_their_peak_capability_ratios() {
    // Conclusion §6: "2 Xeon CPUs are ahead of desktop GPUs only in
    // accordance with the difference in peak performance capabilities."
    let cpu = CpuModel::endeavour();
    let cpu_t = cpu.table2_cell(
        Scenario::Analytical,
        Layout::Soa,
        Precision::F32,
        Parallelization::DpcppNuma,
    );
    let p630 = GpuModel::p630();
    let iris = GpuModel::iris_xe_max();
    let slow_p = p630.nsps_f32(Scenario::Analytical, Layout::Soa) / cpu_t;
    let slow_i = iris.nsps_f32(Scenario::Analytical, Layout::Soa) / cpu_t;
    // P630 has ~8x less peak than the node, Iris ~1.4x less; the observed
    // slowdowns must stay well under those deficits (the paper's point:
    // performance is "reasonable" with zero GPU tuning).
    assert!(slow_p < 8.0, "P630 slowdown {slow_p:.1}");
    assert!(slow_i < 3.0, "Iris slowdown {slow_i:.1}");
    assert!(slow_p > slow_i);
}

#[test]
fn fig1_shapes_from_public_api() {
    let m = CpuModel::endeavour();
    let omp = m.speedup_curve(
        Scenario::Precalculated,
        Layout::Aos,
        Precision::F32,
        Parallelization::OpenMp,
    );
    let numa = m.speedup_curve(
        Scenario::Precalculated,
        Layout::Aos,
        Precision::F32,
        Parallelization::DpcppNuma,
    );
    assert_eq!(omp.len(), 48);
    // OpenMP: linear start; NUMA: super-linear start.
    assert!(omp[1] <= 2.0 + 1e-9);
    assert!(numa[1] > 2.0);
    // Both end in the same ~60% efficiency region with close absolute
    // performance.
    let omp_abs = m.nsps(
        Scenario::Precalculated,
        Layout::Aos,
        Precision::F32,
        Parallelization::OpenMp,
        48,
    );
    let numa_abs = m.nsps(
        Scenario::Precalculated,
        Layout::Aos,
        Precision::F32,
        Parallelization::DpcppNuma,
        48,
    );
    assert!((numa_abs / omp_abs - 1.0).abs() < 0.15);
}

#[test]
fn first_iteration_penalty_shows_in_the_profile() {
    for gpu in GpuModel::paper_devices() {
        let profile = gpu.iteration_profile(Scenario::Analytical, Layout::Aos, 10);
        let steady = profile[5];
        let ratio = profile[0] / steady;
        assert!((1.4..1.6).contains(&ratio), "{}: {ratio}", gpu.spec.name);
        // "Considering that we perform a lot of iterations, this effect
        // does not have a significant impact": amortized over 10
        // iterations the overhead is ~5%.
        let mean = profile.iter().sum::<f64>() / 10.0;
        assert!(mean / steady < 1.06);
    }
}

#[test]
fn reproduction_report_is_queryable_and_tight() {
    let cells = pic_perfmodel::default_report();
    assert_eq!(cells.len(), 36);
    // Specific cells are addressable by label.
    let omp_p_f32 = cells
        .iter()
        .find(|c| c.label == "AoS/OpenMP/Precalculated Fields/float")
        .expect("cell present");
    assert_eq!(omp_p_f32.paper, 0.53);
    assert!(omp_p_f32.deviation().abs() < 0.05);
    // Aggregate fidelity matches the headline in EXPERIMENTS.md.
    let f = pic_perfmodel::fidelity(&cells);
    assert!(
        f.mean_abs_deviation < 0.10,
        "mean = {}",
        f.mean_abs_deviation
    );
}

#[test]
fn hyperthreading_gain_is_modest_as_the_paper_reports() {
    // §5.3: "employing 96 threads is empirically the best" — a gain, but
    // Table 2 itself shows no 2x anywhere, so the SMT model must be small.
    let m = CpuModel::endeavour();
    let plain = m.nsps(
        Scenario::Precalculated,
        Layout::Aos,
        Precision::F32,
        Parallelization::OpenMp,
        48,
    );
    let smt = m.nsps_smt(
        Scenario::Precalculated,
        Layout::Aos,
        Precision::F32,
        Parallelization::OpenMp,
        48,
    );
    let gain = plain / smt;
    assert!((1.02..1.2).contains(&gain), "SMT gain {gain}");
}

//! Golden-value regression tests: exact double-precision values recorded
//! from the verified build (the one whose physics tests — Maxwell
//! consistency, |p| preservation, ω_p, continuity — all pass). Any change
//! to the arithmetic of the pusher, the field evaluation, or the special
//! functions shows up here first. The band is 1e-12 relative (not
//! bitwise), so legitimate reorderings don't break the build while real
//! regressions do.

// The golden constants are recorded with every digit the reference build
// printed; keep them verbatim rather than rounding to f64's shortest form.
#![allow(clippy::excessive_precision)]

use pic_boris::{BorisPusher, Pusher};
use pic_fields::{DipoleStandingWave, FieldSampler, EB};
use pic_math::constants::{BENCH_OMEGA, BENCH_POWER, ELECTRON_MASS};
use pic_math::special;
use pic_math::Vec3;
use pic_particles::{Particle, Species, SpeciesId};

fn assert_close(got: f64, want: f64, what: &str) {
    let denom = want.abs().max(1e-300);
    assert!(
        (got - want).abs() / denom < 1e-12,
        "{what}: got {got:.17e}, golden {want:.17e}"
    );
}

#[test]
fn golden_special_functions() {
    // x = 0.5 exercises the series branch; 1.5 and 5.0 the closed forms.
    assert_close(special::f1(0.5), 1.62537030636066560e-1, "f1(0.5)");
    assert_close(special::f2(0.5), 1.63711066079934124e-2, "f2(0.5)");
    assert_close(special::f3(0.5), 6.33777015936272892e-1, "f3(0.5)");
    assert_close(special::f1(1.5), 3.96172970712222239e-1, "f1(1.5)");
    assert_close(special::f2(1.5), 1.27349283688408227e-1, "f2(1.5)");
    assert_close(special::f3(1.5), 4.00881343927888101e-1, "f3(1.5)");
    assert_close(special::f1(5.0), -9.50894080791707952e-2, "f1(5.0)");
    assert_close(special::f2(5.0), 1.34731210085125203e-1, "f2(5.0)");
    assert_close(special::f3(5.0), -1.72766973316793526e-1, "f3(5.0)");
}

#[test]
fn golden_dipole_field_values() {
    let wave = DipoleStandingWave::<f64>::new(BENCH_POWER, BENCH_OMEGA);
    let f = wave.sample(Vec3::new(2.0e-5, -1.5e-5, 3.0e-5), 2.5e-16);
    assert_close(f.e.x, 5.72460115215737343e9, "Ex");
    assert_close(f.e.y, 7.63280153620983219e9, "Ey");
    assert_eq!(f.e.z, 0.0, "Ez is identically zero for the m-dipole wave");
    assert_close(f.b.x, -2.46269504192363167e9, "Bx");
    assert_close(f.b.y, 1.84702128144272351e9, "By");
    assert_close(f.b.z, -3.74614038875455046e9, "Bz");
}

#[test]
fn golden_boris_step() {
    let sp = Species::<f64>::electron();
    let field = EB::new(Vec3::new(1.0e6, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0e7));
    let mut p = Particle::new(
        Vec3::zero(),
        Vec3::new(1.0e-17, 2.0e-17, -5.0e-18),
        1.0,
        SpeciesId(0),
        ELECTRON_MASS,
    );
    BorisPusher.push(&mut p, &field, &sp, 1.0e-15);
    assert_close(p.momentum.x, 6.74357575568894127e-18, "px");
    assert_close(p.momentum.y, 2.11301184230189554e-17, "py");
    assert_close(p.momentum.z, -5.00000000000000036e-18, "pz");
    assert_close(p.position.x, 5.68920794989777829e-6, "x");
    assert_close(p.position.y, 1.78263938998694633e-5, "y");
    assert_close(p.position.z, -4.21824278098923313e-6, "z");
    assert_close(p.gamma, 1.30121612571138257e0, "gamma");
}

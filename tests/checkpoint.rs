//! Integration: checkpoint/restart through the ensemble I/O module.
//!
//! A long benchmark run must be resumable: write the ensemble to a
//! snapshot mid-run, reload it (in either layout), continue, and land on
//! exactly the same state as the uninterrupted run.

use pic_bench::{bench_dt, build_ensemble, dipole_wave};
use pic_boris::{AnalyticalSource, BorisPusher, PushKernel};
use pic_math::Real;
use pic_particles::io::{read_ensemble, write_ensemble};
use pic_particles::{AosEnsemble, ParticleAccess, SoaEnsemble, SpeciesTable};

fn push_steps<R: Real, S: ParticleAccess<R>>(ens: &mut S, steps: usize, start_step: usize) {
    let table = SpeciesTable::<R>::with_standard_species();
    let wave = dipole_wave::<R>();
    let dt = R::from_f64(bench_dt());
    let mut kernel = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
    // Reconstruct the clock exactly as the uninterrupted run built it —
    // by repeated accumulation, not one multiplication (the two differ in
    // the last ulp, which a bitwise restart comparison would see).
    let mut t = R::ZERO;
    for _ in 0..start_step {
        t += dt;
    }
    kernel.set_time(t);
    for _ in 0..steps {
        ens.for_each_mut(&mut kernel);
        kernel.advance_time();
    }
}

#[test]
fn checkpoint_restart_is_exact() {
    // Uninterrupted reference: 60 steps.
    let mut reference: AosEnsemble<f64> = build_ensemble(500, 17);
    push_steps(&mut reference, 60, 0);

    // Interrupted run: 25 steps, snapshot, restart, 35 more.
    let mut first_leg: AosEnsemble<f64> = build_ensemble(500, 17);
    push_steps(&mut first_leg, 25, 0);
    let mut snapshot = Vec::new();
    write_ensemble(&first_leg, &mut snapshot).expect("write snapshot");

    let mut resumed: AosEnsemble<f64> = read_ensemble(snapshot.as_slice()).expect("read");
    push_steps(&mut resumed, 35, 25);

    for i in 0..reference.len() {
        assert_eq!(reference.get(i), resumed.get(i), "particle {i} diverged");
    }
}

#[test]
fn checkpoint_can_switch_layouts() {
    // Snapshot an AoS run, resume it as SoA: identical physics.
    let mut reference: SoaEnsemble<f64> = build_ensemble(300, 4);
    push_steps(&mut reference, 40, 0);

    let mut aos_leg: AosEnsemble<f64> = build_ensemble(300, 4);
    push_steps(&mut aos_leg, 20, 0);
    let mut snapshot = Vec::new();
    write_ensemble(&aos_leg, &mut snapshot).unwrap();
    let mut soa_leg: SoaEnsemble<f64> = read_ensemble(snapshot.as_slice()).unwrap();
    push_steps(&mut soa_leg, 20, 20);

    for i in 0..reference.len() {
        assert_eq!(reference.get(i), soa_leg.get(i), "particle {i}");
    }
}

#[test]
fn f32_checkpoint_restart_is_exact_in_aos() {
    // The snapshot text is written as f64 (`{:e}` is shortest-round-trip
    // exact) and f32 → f64 widening is lossless, so the f32 round-trip
    // must be bitwise too.
    let mut reference: AosEnsemble<f32> = build_ensemble(200, 9);
    push_steps(&mut reference, 30, 0);

    let mut first_leg: AosEnsemble<f32> = build_ensemble(200, 9);
    push_steps(&mut first_leg, 12, 0);
    let mut snapshot = Vec::new();
    write_ensemble(&first_leg, &mut snapshot).expect("write snapshot");

    let mut resumed: AosEnsemble<f32> = read_ensemble(snapshot.as_slice()).expect("read");
    push_steps(&mut resumed, 18, 12);

    for i in 0..reference.len() {
        assert_eq!(reference.get(i), resumed.get(i), "f32 aos particle {i}");
    }
}

#[test]
fn f32_checkpoint_restart_is_exact_in_soa() {
    let mut reference: SoaEnsemble<f32> = build_ensemble(240, 21);
    push_steps(&mut reference, 36, 0);

    let mut first_leg: SoaEnsemble<f32> = build_ensemble(240, 21);
    push_steps(&mut first_leg, 15, 0);
    let mut snapshot = Vec::new();
    write_ensemble(&first_leg, &mut snapshot).expect("write snapshot");

    let mut resumed: SoaEnsemble<f32> = read_ensemble(snapshot.as_slice()).expect("read");
    push_steps(&mut resumed, 21, 15);

    for i in 0..reference.len() {
        assert_eq!(reference.get(i), resumed.get(i), "f32 soa particle {i}");
    }
}

#[test]
fn truncated_snapshot_is_invalid_data_not_a_panic() {
    let ens: SoaEnsemble<f64> = build_ensemble(5, 3);
    let mut snapshot = Vec::new();
    write_ensemble(&ens, &mut snapshot).unwrap();
    let text = String::from_utf8(snapshot).unwrap();
    // Cut mid-way through the last particle line: the partial row can
    // never have its nine fields, so the reader must surface a clean
    // InvalidData error instead of panicking or silently accepting.
    let last_row_start = text.trim_end().rfind('\n').expect("multi-line snapshot") + 1;
    let cut = &text.as_bytes()[..last_row_start + 5];
    let err = read_ensemble::<f64, SoaEnsemble<f64>, _>(cut).expect_err("truncated snapshot");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn snapshot_format_is_self_describing() {
    let ens: AosEnsemble<f64> = build_ensemble(3, 1);
    let mut out = Vec::new();
    write_ensemble(&ens, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.starts_with(pic_particles::io::HEADER));
    assert_eq!(text.lines().count(), 4); // header + 3 particles
}

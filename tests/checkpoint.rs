//! Integration: checkpoint/restart through the ensemble I/O module.
//!
//! A long benchmark run must be resumable: write the ensemble to a
//! snapshot mid-run, reload it (in either layout), continue, and land on
//! exactly the same state as the uninterrupted run.

use pic_bench::{bench_dt, build_ensemble, dipole_wave};
use pic_boris::{AnalyticalSource, BorisPusher, PushKernel};
use pic_particles::io::{read_ensemble, write_ensemble};
use pic_particles::{AosEnsemble, ParticleAccess, SoaEnsemble, SpeciesTable};

fn push_steps<S: ParticleAccess<f64>>(ens: &mut S, steps: usize, start_step: usize) {
    let table = SpeciesTable::<f64>::with_standard_species();
    let wave = dipole_wave::<f64>();
    let dt = bench_dt();
    let mut kernel = PushKernel::new(AnalyticalSource::new(&wave), BorisPusher, &table, dt);
    // Reconstruct the clock exactly as the uninterrupted run built it —
    // by repeated accumulation, not one multiplication (the two differ in
    // the last ulp, which a bitwise restart comparison would see).
    let mut t = 0.0;
    for _ in 0..start_step {
        t += dt;
    }
    kernel.set_time(t);
    for _ in 0..steps {
        ens.for_each_mut(&mut kernel);
        kernel.advance_time();
    }
}

#[test]
fn checkpoint_restart_is_exact() {
    // Uninterrupted reference: 60 steps.
    let mut reference: AosEnsemble<f64> = build_ensemble(500, 17);
    push_steps(&mut reference, 60, 0);

    // Interrupted run: 25 steps, snapshot, restart, 35 more.
    let mut first_leg: AosEnsemble<f64> = build_ensemble(500, 17);
    push_steps(&mut first_leg, 25, 0);
    let mut snapshot = Vec::new();
    write_ensemble(&first_leg, &mut snapshot).expect("write snapshot");

    let mut resumed: AosEnsemble<f64> = read_ensemble(snapshot.as_slice()).expect("read");
    push_steps(&mut resumed, 35, 25);

    for i in 0..reference.len() {
        assert_eq!(reference.get(i), resumed.get(i), "particle {i} diverged");
    }
}

#[test]
fn checkpoint_can_switch_layouts() {
    // Snapshot an AoS run, resume it as SoA: identical physics.
    let mut reference: SoaEnsemble<f64> = build_ensemble(300, 4);
    push_steps(&mut reference, 40, 0);

    let mut aos_leg: AosEnsemble<f64> = build_ensemble(300, 4);
    push_steps(&mut aos_leg, 20, 0);
    let mut snapshot = Vec::new();
    write_ensemble(&aos_leg, &mut snapshot).unwrap();
    let mut soa_leg: SoaEnsemble<f64> = read_ensemble(snapshot.as_slice()).unwrap();
    push_steps(&mut soa_leg, 20, 20);

    for i in 0..reference.len() {
        assert_eq!(reference.get(i), soa_leg.get(i), "particle {i}");
    }
}

#[test]
fn snapshot_format_is_self_describing() {
    let ens: AosEnsemble<f64> = build_ensemble(3, 1);
    let mut out = Vec::new();
    write_ensemble(&ens, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.starts_with(pic_particles::io::HEADER));
    assert_eq!(text.lines().count(), 4); // header + 3 particles
}
